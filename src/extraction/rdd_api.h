#ifndef ST4ML_EXTRACTION_RDD_API_H_
#define ST4ML_EXTRACTION_RDD_API_H_

#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "engine/dataset.h"
#include "instances/instances.h"

namespace st4ml {

/// The collective-RDD extraction vocabulary (paper §3.3): MapValue rewrites
/// every cell value in place, MapValuePlus additionally hands the cell its
/// own geometry/bin, and CollectAndMerge folds the per-partition collectives
/// a converter emitted into the single result the user asked for.

template <typename V, typename Fn>
auto MapValue(const Dataset<TimeSeries<V>>& data, Fn f) {
  using R = std::decay_t<std::invoke_result_t<Fn, const V&>>;
  return data.Map([f](const TimeSeries<V>& ts) {
    std::vector<R> values;
    values.reserve(ts.size());
    for (size_t i = 0; i < ts.size(); ++i) values.push_back(f(ts.value(i)));
    return TimeSeries<R>(ts.structure(), std::move(values));
  });
}

template <typename V, typename Fn>
auto MapValue(const Dataset<SpatialMap<V>>& data, Fn f) {
  using R = std::decay_t<std::invoke_result_t<Fn, const V&>>;
  return data.Map([f](const SpatialMap<V>& sm) {
    std::vector<R> values;
    values.reserve(sm.size());
    for (size_t i = 0; i < sm.size(); ++i) values.push_back(f(sm.value(i)));
    return SpatialMap<R>(sm.structure(), std::move(values));
  });
}

template <typename V, typename Fn>
auto MapValue(const Dataset<Raster<V>>& data, Fn f) {
  using R = std::decay_t<std::invoke_result_t<Fn, const V&>>;
  return data.Map([f](const Raster<V>& raster) {
    std::vector<R> values;
    values.reserve(raster.size());
    for (size_t i = 0; i < raster.size(); ++i) {
      values.push_back(f(raster.value(i)));
    }
    return Raster<R>(raster.structure(), std::move(values));
  });
}

template <typename V, typename Fn>
auto MapValuePlus(const Dataset<TimeSeries<V>>& data, Fn f) {
  using R = std::decay_t<std::invoke_result_t<Fn, const V&, const Duration&>>;
  return data.Map([f](const TimeSeries<V>& ts) {
    std::vector<R> values;
    values.reserve(ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      values.push_back(f(ts.value(i), ts.bin(i)));
    }
    return TimeSeries<R>(ts.structure(), std::move(values));
  });
}

template <typename V, typename Fn>
auto MapValuePlus(const Dataset<SpatialMap<V>>& data, Fn f) {
  using R = std::decay_t<std::invoke_result_t<Fn, const V&, const Polygon&>>;
  return data.Map([f](const SpatialMap<V>& sm) {
    std::vector<R> values;
    values.reserve(sm.size());
    for (size_t i = 0; i < sm.size(); ++i) {
      values.push_back(f(sm.value(i), sm.cell(i)));
    }
    return SpatialMap<R>(sm.structure(), std::move(values));
  });
}

template <typename V, typename Fn>
auto MapValuePlus(const Dataset<Raster<V>>& data, Fn f) {
  using R = std::decay_t<
      std::invoke_result_t<Fn, const V&, const Polygon&, const Duration&>>;
  return data.Map([f](const Raster<V>& raster) {
    std::vector<R> values;
    values.reserve(raster.size());
    for (size_t i = 0; i < raster.size(); ++i) {
      values.push_back(f(raster.value(i), raster.cell(i), raster.bin(i)));
    }
    return Raster<R>(raster.structure(), std::move(values));
  });
}

namespace extraction_internal {

template <typename Out, typename Coll, typename R, typename MergeFn>
Out MergeCollected(const std::vector<Coll>& parts, const R& zero,
                   MergeFn merge) {
  ST4ML_CHECK(!parts.empty()) << "CollectAndMerge on an empty dataset";
  Out out(parts.front().structure(), zero);
  for (const Coll& part : parts) {
    ST4ML_CHECK(part.size() == out.size())
        << "partitions disagree on structure size";
    for (size_t i = 0; i < out.size(); ++i) {
      out.mutable_value(i) = merge(std::move(out.mutable_value(i)),
                                   part.value(i));
    }
  }
  return out;
}

}  // namespace extraction_internal

template <typename V, typename R, typename MergeFn>
TimeSeries<R> CollectAndMerge(const Dataset<TimeSeries<V>>& data, R zero,
                              MergeFn merge) {
  return extraction_internal::MergeCollected<TimeSeries<R>>(data.Collect(),
                                                            zero, merge);
}

template <typename V, typename R, typename MergeFn>
SpatialMap<R> CollectAndMerge(const Dataset<SpatialMap<V>>& data, R zero,
                              MergeFn merge) {
  return extraction_internal::MergeCollected<SpatialMap<R>>(data.Collect(),
                                                            zero, merge);
}

template <typename V, typename R, typename MergeFn>
Raster<R> CollectAndMerge(const Dataset<Raster<V>>& data, R zero,
                          MergeFn merge) {
  return extraction_internal::MergeCollected<Raster<R>>(data.Collect(), zero,
                                                        merge);
}

}  // namespace st4ml

#endif  // ST4ML_EXTRACTION_RDD_API_H_
