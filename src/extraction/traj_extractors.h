#ifndef ST4ML_EXTRACTION_TRAJ_EXTRACTORS_H_
#define ST4ML_EXTRACTION_TRAJ_EXTRACTORS_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "accel/kernels.h"
#include "engine/dataset.h"
#include "extraction/extractor.h"
#include "geometry/point.h"
#include "instances/instances.h"

namespace st4ml {

/// Stay-point detection on one point sequence. The algorithm anchors at a
/// point, extends the window while every point stays within `dist_m` meters
/// of the anchor, and reports a stay when the window holds at least two
/// points spanning `min_duration_s` seconds. This is deliberately the exact
/// loop the reference implementations use, so results compare one to one.
inline std::vector<StayPoint> StayPointsOf(const std::vector<STEntry>& entries,
                                           double dist_m,
                                           int64_t min_duration_s) {
  std::vector<StayPoint> stays;
  size_t n = entries.size();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n &&
           HaversineMeters(entries[i].point, entries[j].point) <= dist_m) {
      ++j;
    }
    if (j - i >= 2 && entries[j - 1].time - entries[i].time >= min_duration_s) {
      StayPoint stay;
      double sx = 0.0;
      double sy = 0.0;
      for (size_t k = i; k < j; ++k) {
        sx += entries[k].point.x;
        sy += entries[k].point.y;
      }
      stay.center = Point(sx / static_cast<double>(j - i),
                          sy / static_cast<double>(j - i));
      stay.duration = Duration(entries[i].time, entries[j - 1].time);
      stay.num_points = static_cast<int64_t>(j - i);
      stays.push_back(stay);
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

/// Per-trajectory stay points, keyed by trajectory id.
inline Dataset<std::pair<int64_t, std::vector<StayPoint>>> ExtractStayPoints(
    const Dataset<STTrajectory>& trajs, double dist_m, int64_t min_duration_s) {
  return trajs.Map([dist_m, min_duration_s](const STTrajectory& t) {
    return std::make_pair(t.data, StayPointsOf(t.entries, dist_m,
                                               min_duration_s));
  });
}

/// Per-trajectory average speed, keyed by trajectory id.
inline Dataset<std::pair<int64_t, double>> ExtractTrajSpeeds(
    const Dataset<STTrajectory>& trajs,
    SpeedUnit unit = SpeedUnit::kMetersPerSecond) {
  double factor = SpeedFactor(unit);
  return trajs.Map([factor](const STTrajectory& t) {
    return std::make_pair(t.data, t.AverageSpeedMps() * factor);
  });
}

/// Whole-dataset speed statistics: min / max / sum / count over the
/// per-trajectory average speeds. Each partition materializes its speed
/// column and reduces it with the MinMaxSum kernel (one vectorized pass);
/// the per-partition partials merge on the driver in partition order. The
/// kernel's fixed 8-lane accumulation order (accel/kernels.h) makes the
/// sum — and therefore the whole result — identical on every backend and
/// at every worker count, since partials are per-partition slots.
inline SpeedStats ExtractTrajSpeedStats(
    const Dataset<STTrajectory>& trajs,
    SpeedUnit unit = SpeedUnit::kMetersPerSecond) {
  double factor = SpeedFactor(unit);
  Dataset<SpeedStats> partial =
      trajs.MapPartitions([factor](const std::vector<STTrajectory>& part) {
        std::vector<double> speeds;
        speeds.reserve(part.size());
        for (const STTrajectory& t : part) {
          speeds.push_back(t.AverageSpeedMps() * factor);
        }
        SpeedStats stats;
        stats.count = static_cast<int64_t>(speeds.size());
        accel::Active().MinMaxSum(speeds.data(), speeds.size(), &stats.min,
                                  &stats.max, &stats.sum);
        accel::BackendRegistry::Instance().CountBatch(speeds.size());
        return std::vector<SpeedStats>{stats};
      });
  SpeedStats merged;
  for (size_t p = 0; p < partial.num_partitions(); ++p) {
    for (const SpeedStats& s : partial.partition(p)) {
      merged.min = merged.min < s.min ? merged.min : s.min;
      merged.max = merged.max > s.max ? merged.max : s.max;
      merged.sum += s.sum;
      merged.count += s.count;
    }
  }
  return merged;
}

/// Pairs of trajectories that pass within `dist_m` meters of each other
/// within `dt_s` seconds, found per engine partition (the trajectory twin of
/// ExtractEventCompanions). A coarse STBox proximity test prunes pairs, then
/// entries are matched exactly.
template <typename IdFn>
Dataset<std::pair<int64_t, int64_t>> ExtractTrajCompanions(
    const Dataset<STTrajectory>& trajs, double dist_m, int64_t dt_s,
    IdFn id_of) {
  return trajs.MapPartitions([dist_m, dt_s,
                              id_of](const std::vector<STTrajectory>& part) {
    // Rough degrees-per-meter bound (equator-scale) for the box prescreen;
    // only used to PRUNE, never to accept.
    double deg = dist_m / 111000.0;
    std::vector<STBox> boxes;
    boxes.reserve(part.size());
    for (const STTrajectory& t : part) boxes.push_back(t.ComputeSTBox());
    std::vector<std::pair<int64_t, int64_t>> out;
    for (size_t i = 0; i < part.size(); ++i) {
      for (size_t j = i + 1; j < part.size(); ++j) {
        int64_t ia = id_of(part[i]);
        int64_t ib = id_of(part[j]);
        if (ia == ib) continue;
        STBox widened(boxes[i].mbr.Buffered(deg),
                      Duration(boxes[i].time.start() - dt_s,
                               boxes[i].time.end() + dt_s));
        if (!widened.Intersects(boxes[j])) continue;
        bool companion = false;
        for (const STEntry& a : part[i].entries) {
          for (const STEntry& b : part[j].entries) {
            if (std::llabs(a.time - b.time) <= dt_s &&
                HaversineMeters(a.point, b.point) <= dist_m) {
              companion = true;
              break;
            }
          }
          if (companion) break;
        }
        if (companion) {
          out.emplace_back(std::min(ia, ib), std::max(ia, ib));
        }
      }
    }
    return out;
  });
}

}  // namespace st4ml

#endif  // ST4ML_EXTRACTION_TRAJ_EXTRACTORS_H_
