#ifndef ST4ML_EXTRACTION_EVENT_EXTRACTORS_H_
#define ST4ML_EXTRACTION_EVENT_EXTRACTORS_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/dataset.h"
#include "geometry/point.h"
#include "instances/instances.h"
#include "temporal/duration.h"

namespace st4ml {

/// Events whose instant falls inside the hour-of-day window
/// [start_hour, end_hour); a window wrapping midnight (start > end, e.g.
/// 23..4) keeps hours >= start OR < end.
inline Dataset<STEvent> ExtractAnomalies(const Dataset<STEvent>& events,
                                         int start_hour, int end_hour) {
  return events.Filter([start_hour, end_hour](const STEvent& e) {
    int h = HourOfDay(e.temporal.start());
    if (start_hour <= end_hour) return h >= start_hour && h < end_hour;
    return h >= start_hour || h < end_hour;
  });
}

/// Pairs of events that happened within `dist_m` meters and `dt_s` seconds of
/// each other INSIDE the same engine partition — the use case that needs
/// duplicated ST partitioning (options.duplicate) to be correct near
/// partition borders, which is exactly what the T-STR benchmark measures.
/// Each pair is reported as (smaller id, larger id).
template <typename IdFn>
Dataset<std::pair<int64_t, int64_t>> ExtractEventCompanions(
    const Dataset<STEvent>& events, double dist_m, int64_t dt_s, IdFn id_of) {
  return events.MapPartitions(
      [dist_m, dt_s, id_of](const std::vector<STEvent>& part) {
        std::vector<size_t> order(part.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(), [&part](size_t a, size_t b) {
          return part[a].temporal.start() < part[b].temporal.start();
        });
        std::vector<std::pair<int64_t, int64_t>> out;
        for (size_t i = 0; i < order.size(); ++i) {
          const STEvent& a = part[order[i]];
          for (size_t j = i + 1; j < order.size(); ++j) {
            const STEvent& b = part[order[j]];
            if (b.temporal.start() - a.temporal.start() > dt_s) break;
            int64_t ia = id_of(a);
            int64_t ib = id_of(b);
            if (ia == ib) continue;
            if (HaversineMeters(a.spatial, b.spatial) <= dist_m) {
              out.emplace_back(std::min(ia, ib), std::max(ia, ib));
            }
          }
        }
        return out;
      });
}

}  // namespace st4ml

#endif  // ST4ML_EXTRACTION_EVENT_EXTRACTORS_H_
