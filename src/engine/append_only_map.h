#ifndef ST4ML_ENGINE_APPEND_ONLY_MAP_H_
#define ST4ML_ENGINE_APPEND_ONLY_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace st4ml {
namespace internal {

/// An insert-or-combine hash map for shuffle aggregation, modeled on
/// Spark's AppendOnlyMap: entries live in a flat vector in FIRST-INSERTION
/// order and an open-addressing index table (uint32 slots, linear probing)
/// points into it. Compared to std::unordered_map this does one cache-line
/// probe per operation instead of a bucket-pointer chase, never allocates
/// per node, and iterates in deterministic insertion order — which is what
/// lets the shuffle reduce each key's values in exactly the sequence the
/// determinism contract pins (see pair_ops.h).
///
/// Only grows; no erase. Keys must be equality-comparable.
template <typename K, typename V, typename Hash>
class AppendOnlyMap {
 public:
  /// `expected` is an upper bound on distinct keys; the slot table is sized
  /// so no rehash happens when it holds.
  explicit AppendOnlyMap(size_t expected) {
    size_t slots = 16;
    while (slots * 7 < expected * 10) slots <<= 1;  // load factor <= 0.7
    slots_.assign(slots, 0);
    mask_ = slots - 1;
    entries_.reserve(expected);
  }

  /// Inserts (key, value) or combines into the existing entry with
  /// `combine(old, value)`.
  template <typename Combine>
  void InsertOrCombine(const K& key, const V& value, Combine combine) {
    std::pair<K, V>* entry = Probe(key);
    if (entry == nullptr) {
      entries_.emplace_back(key, value);
    } else {
      entry->second = combine(entry->second, value);
    }
  }

  /// Returns the value slot for `key`, default-constructing it on first
  /// touch (GroupByKey's per-key accumulator).
  V& GetOrInsert(const K& key) {
    std::pair<K, V>* entry = Probe(key);
    if (entry != nullptr) return entry->second;
    entries_.emplace_back(key, V());
    return entries_.back().second;
  }

  /// Returns `key`'s dense entry index (first-insertion order), inserting a
  /// default-constructed value on first touch. Lets callers keep per-key
  /// side arrays (counts, offsets) indexed by insertion order.
  size_t GetIndex(const K& key) {
    std::pair<K, V>* entry = Probe(key);
    if (entry != nullptr) {
      return static_cast<size_t>(entry - entries_.data());
    }
    entries_.emplace_back(key, V());
    return entries_.size() - 1;
  }

  size_t size() const { return entries_.size(); }

  /// Consumes the map, yielding entries in first-insertion order.
  std::vector<std::pair<K, V>> TakeEntries() && { return std::move(entries_); }

 private:
  /// Finds `key`'s entry, or claims a slot for it and returns nullptr (the
  /// caller must then append the entry).
  std::pair<K, V>* Probe(const K& key) {
    if ((entries_.size() + 1) * 10 > slots_.size() * 7) Grow();
    size_t i = Hash{}(key) & mask_;
    for (;;) {
      uint32_t stored = slots_[i];
      if (stored == 0) {
        slots_[i] = static_cast<uint32_t>(entries_.size()) + 1;
        return nullptr;
      }
      std::pair<K, V>& entry = entries_[stored - 1];
      if (entry.first == key) return &entry;
      i = (i + 1) & mask_;
    }
  }

  void Grow() {
    size_t slots = slots_.size() * 2;
    slots_.assign(slots, 0);
    mask_ = slots - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      size_t i = Hash{}(entries_[e].first) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<uint32_t>(e) + 1;
    }
  }

  std::vector<std::pair<K, V>> entries_;  // first-insertion order
  std::vector<uint32_t> slots_;           // entry index + 1; 0 = empty
  size_t mask_ = 0;
};

}  // namespace internal
}  // namespace st4ml

#endif  // ST4ML_ENGINE_APPEND_ONLY_MAP_H_
