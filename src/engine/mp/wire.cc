#include "engine/mp/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ingest/wal.h"

namespace st4ml {
namespace mp {
namespace {

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// send(2) with MSG_NOSIGNAL so a vanished peer surfaces as EPIPE instead
/// of killing the process — worker death is a first-class event here, not a
/// crash. Falls back to write(2) for plain fds (tests feed pipes too).
Status WriteAll(int fd, const char* data, size_t len, uint64_t* net_bytes) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("mp frame write failed: ") +
                             std::strerror(errno));
    }
    data += n;
    len -= static_cast<size_t>(n);
    if (net_bytes != nullptr) *net_bytes += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `len` bytes. `*got` reports how many arrived before an
/// EOF, so the caller can tell "clean close" from "torn frame".
Status ReadAll(int fd, char* data, size_t len, size_t* got,
               uint64_t* net_bytes) {
  *got = 0;
  while (*got < len) {
    ssize_t n = ::read(fd, data + *got, len - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("mp frame read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::Ok();  // EOF; *got says how far we came
    *got += static_cast<size_t>(n);
    if (net_bytes != nullptr) *net_bytes += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(MpFrameType::kGrant) &&
         type <= static_cast<uint8_t>(MpFrameType::kShutdown);
}

}  // namespace

void AppendMpFrame(std::string* out, MpFrameType type,
                   std::string_view payload) {
  AppendRaw(out, static_cast<uint8_t>(type));
  AppendRaw(out, static_cast<uint32_t>(payload.size()));
  AppendRaw(out, WalCrc32(payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

Status WriteMpFrame(int fd, MpFrameType type, std::string_view payload,
                    uint64_t* net_bytes) {
  char header[kMpFrameHeaderBytes];
  header[0] = static_cast<char>(type);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = WalCrc32(payload.data(), payload.size());
  std::memcpy(header + 1, &len, sizeof(len));
  std::memcpy(header + 5, &crc, sizeof(crc));
  ST4ML_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header), net_bytes));
  return WriteAll(fd, payload.data(), payload.size(), net_bytes);
}

StatusOr<MpFrame> ReadMpFrame(int fd, uint64_t* net_bytes) {
  char header[kMpFrameHeaderBytes];
  size_t got = 0;
  ST4ML_RETURN_IF_ERROR(
      ReadAll(fd, header, sizeof(header), &got, net_bytes));
  if (got == 0) return Status::NotFound("mp peer closed");
  if (got < sizeof(header)) {
    return Status::IOError("truncated mp frame header");
  }
  uint8_t type = static_cast<uint8_t>(header[0]);
  if (!ValidFrameType(type)) {
    return Status::Corruption("unknown mp frame type " +
                              std::to_string(static_cast<int>(type)));
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, header + 1, sizeof(len));
  std::memcpy(&crc, header + 5, sizeof(crc));
  if (len > kMaxMpFramePayload) {
    return Status::Corruption("oversized mp frame payload: " +
                              std::to_string(len) + " bytes declared");
  }
  MpFrame frame;
  frame.type = static_cast<MpFrameType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    ST4ML_RETURN_IF_ERROR(
        ReadAll(fd, frame.payload.data(), len, &got, net_bytes));
    if (got < len) return Status::IOError("truncated mp frame payload");
  }
  if (WalCrc32(frame.payload.data(), frame.payload.size()) != crc) {
    return Status::Corruption("mp frame crc mismatch");
  }
  return frame;
}

}  // namespace mp
}  // namespace st4ml
