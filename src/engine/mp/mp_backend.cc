#include "engine/mp/mp_backend.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "engine/execution_context.h"
#include "engine/mp/codec.h"
#include "engine/mp/wire.h"

namespace st4ml {
namespace mp {
namespace {

/// One contiguous index range of the job. `attempts` counts how many times
/// it has been granted — the RetryPolicy bound on re-claims after deaths.
struct TaskGrant {
  size_t start = 0;
  size_t end = 0;
  int attempts = 0;
};

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;  ///< driver end of the socketpair; -1 once the worker is gone
  bool busy = false;
  TaskGrant grant;
  /// First index of the outstanding grant whose kResult has NOT arrived.
  /// Results come back in ascending order, so on death the unfinished
  /// remainder is exactly [next_index, grant.end).
  size_t next_index = 0;
  uint64_t span = 0;  ///< open per-grant tracer span, 0 when none
};

Status StatusFromWire(uint32_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::Ok();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kInternal:
      return Status::Internal(std::move(message));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::Internal("mp task error with unknown code: " +
                          std::move(message));
}

StatusOr<std::string> RunProduceGuarded(
    const ExecutorBackend::ProduceFn& produce, size_t index) {
  try {
    return produce(index);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

/// The scripted `mp/worker_kill` death: SIGKILL, exactly what a crashed or
/// OOM-killed worker looks like to the driver (no unwind, no flush).
[[noreturn]] void DieHard() {
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable unless SIGKILL is somehow masked
}

/// The forked worker's whole life: read grants, produce, stream results,
/// report counter deltas, _exit. Single-threaded by construction; never
/// unwinds into the inherited driver state (every exit is _exit, skipping
/// static destructors and stdio flushes the driver still owns).
[[noreturn]] void WorkerMain(ExecutionContext& ctx, int fd, int slot,
                             const MpOptions& opts, bool kill_armed,
                             const ExecutorBackend::ProduceFn& produce) {
  MetricsSnapshot base = ctx.MetricsSnapshot();
  int grants_seen = 0;
  for (;;) {
    StatusOr<MpFrame> frame = ReadMpFrame(fd, nullptr);
    if (!frame.ok()) _exit(2);  // driver went away or stream corrupt
    if (frame->type == MpFrameType::kShutdown) _exit(0);
    if (frame->type != MpFrameType::kGrant) _exit(2);
    WireCursor cur{frame->payload.data(),
                   frame->payload.data() + frame->payload.size()};
    uint64_t start = 0;
    uint64_t end = 0;
    if (!ReadRaw(&cur, &start).ok() || !ReadRaw(&cur, &end).ok()) _exit(2);

    // The mp/worker_kill fault site, in both spellings: the injector (for
    // chaos runs — the armed state is inherited across fork) and the
    // deterministic MpOptions script (worker_death_test).
    if (!GlobalFaultInjector().MaybeFail(fault_site::kMpWorkerKill).ok()) {
      DieHard();
    }
    const bool fatal_grant =
        kill_armed &&
        (opts.kill_worker == slot ||
         opts.kill_worker == MpOptions::kEveryWorker) &&
        grants_seen == opts.kill_after_grants;
    ++grants_seen;
    if (fatal_grant && opts.kill_after_results <= 0) DieHard();

    int results_sent = 0;
    bool failed = false;
    std::string payload;
    for (uint64_t i = start; i < end; ++i) {
      // Same engine-boundary fault site the in-process chunk runner checks.
      Status injected = GlobalFaultInjector().MaybeFail(fault_site::kTaskRun);
      StatusOr<std::string> result =
          injected.ok() ? RunProduceGuarded(produce, i)
                        : StatusOr<std::string>(injected);
      if (!injected.ok()) {
        internal::Counters(ctx).Add(Counter::kFaultsInjected, 1);
      }
      if (!result.ok()) {
        payload.clear();
        AppendRaw(&payload, i);
        AppendRaw(&payload, static_cast<uint32_t>(result.status().code()));
        WireCodec<std::string>::Encode(result.status().message(), &payload);
        if (!WriteMpFrame(fd, MpFrameType::kTaskError, payload, nullptr)
                 .ok()) {
          _exit(2);
        }
        failed = true;
        break;
      }
      payload.clear();
      payload.reserve(sizeof(i) + result->size());
      AppendRaw(&payload, i);
      payload.append(*result);
      if (!WriteMpFrame(fd, MpFrameType::kResult, payload, nullptr).ok()) {
        _exit(2);
      }
      ++results_sent;
      if (fatal_grant && results_sent >= opts.kill_after_results) DieHard();
    }
    if (failed) continue;  // the driver will fail the job and shut us down

    // kDone: the finished range plus this grant's counter deltas, so
    // worker-side accounting (retries, injected faults) reaches the
    // driver's registry — the record-flow counters themselves ride inside
    // the result payloads and are folded driver-side, never here.
    MetricsSnapshot now = ctx.MetricsSnapshot();
    payload.clear();
    AppendRaw(&payload, start);
    AppendRaw(&payload, end);
    uint32_t num_deltas = 0;
    size_t num_at = payload.size();
    AppendRaw(&payload, num_deltas);
    for (size_t c = 0; c < kNumCounters; ++c) {
      uint64_t delta = now.values[c] - base.values[c];
      if (delta == 0) continue;
      AppendRaw(&payload, static_cast<uint32_t>(c));
      AppendRaw(&payload, delta);
      ++num_deltas;
    }
    std::memcpy(payload.data() + num_at, &num_deltas, sizeof(num_deltas));
    base = now;
    if (!WriteMpFrame(fd, MpFrameType::kDone, payload, nullptr).ok()) {
      _exit(2);
    }
  }
}

class MpExecutorBackend : public ExecutorBackend {
 public:
  explicit MpExecutorBackend(MpOptions options)
      : options_(std::move(options)) {}

  const char* name() const override { return "mp"; }
  bool distributed() const override { return true; }

  Status RunSerialized(ExecutionContext& ctx, const char* job_name,
                       size_t count, const ProduceFn& produce,
                       const ConsumeFn& consume) override;

 private:
  Status SpawnWorker(ExecutionContext& ctx, std::vector<WorkerSlot>* slots,
                     int slot_index, const ProduceFn& produce);

  MpOptions options_;
  /// kill_once: flips when the driver observes the scripted death, so later
  /// jobs (and respawned workers) run unscripted.
  bool kill_consumed_ = false;
};

Status MpExecutorBackend::SpawnWorker(ExecutionContext& ctx,
                                      std::vector<WorkerSlot>* slots,
                                      int slot_index,
                                      const ProduceFn& produce) {
  const bool kill_armed =
      options_.kill_worker != MpOptions::kNoKill &&
      !(options_.kill_once && kill_consumed_);
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Status::IOError(std::string("mp socketpair failed: ") +
                           std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Status::IOError(std::string("mp fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Worker. Drop every inherited driver-side socket — ours AND the other
    // workers' — so a worker's death leaves its socketpair with no other
    // holder and the driver's EOF detection is prompt and reliable.
    ::close(sv[0]);
    for (const WorkerSlot& other : *slots) {
      if (other.fd >= 0) ::close(other.fd);
    }
    WorkerMain(ctx, sv[1], slot_index, options_, kill_armed, produce);
  }
  ::close(sv[1]);
  WorkerSlot& slot = (*slots)[slot_index];
  slot.pid = pid;
  slot.fd = sv[0];
  slot.busy = false;
  slot.next_index = 0;
  slot.span = 0;
  internal::Counters(ctx).Add(Counter::kWorkersSpawned, 1);
  return Status::Ok();
}

Status MpExecutorBackend::RunSerialized(ExecutionContext& ctx,
                                        const char* job_name, size_t count,
                                        const ProduceFn& produce,
                                        const ConsumeFn& consume) {
  CounterRegistry& counters = internal::Counters(ctx);
  // One published job, like the in-process TryRunParallel path, so local
  // and mp runs of the same pipeline agree on parallel_jobs.
  counters.Add(Counter::kParallelJobs, 1);
  Tracer* tracer = ctx.tracer();
  ScopedSpan op(tracer, span_category::kOperation, job_name);

  const int num_workers = std::max(1, options_.num_workers);
  // ~4 grants per worker: a grant is a full network round trip, so coarser
  // than the thread pool's ~8 chunks, but still fine enough that a death
  // re-claims a fraction of the job and skew rebalances.
  const size_t chunk = std::max<size_t>(
      1, count / (static_cast<size_t>(num_workers) * 4));
  std::deque<TaskGrant> pending;
  for (size_t s = 0; s < count; s += chunk) {
    pending.push_back({s, std::min(s + chunk, count), 0});
  }

  std::vector<WorkerSlot> slots(static_cast<size_t>(num_workers));
  int respawns_left = std::max(0, options_.max_respawns);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  uint64_t net_bytes = 0;
  size_t consumed = 0;
  Status job_status;
  auto fail = [&](Status status) {
    if (job_status.ok() && !status.ok()) job_status = std::move(status);
  };

  for (int i = 0; i < num_workers && job_status.ok(); ++i) {
    fail(SpawnWorker(ctx, &slots, i, produce));
  }

  // Reclaims a dead worker's unfinished indices and (budget permitting)
  // forks a replacement into the same slot.
  auto handle_death = [&](WorkerSlot& w) {
    counters.Add(Counter::kWorkersLost, 1);
    if (tracer != nullptr && w.span != 0) {
      tracer->EndSpan(w.span);
      w.span = 0;
    }
    ::close(w.fd);
    w.fd = -1;
    int wstatus = 0;
    while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
    if (options_.kill_once) kill_consumed_ = true;
    if (w.busy) {
      w.busy = false;
      if (w.next_index < w.grant.end) {
        TaskGrant remaining{w.next_index, w.grant.end, w.grant.attempts};
        if (remaining.attempts >= max_attempts) {
          fail(Status::IOError(
              "mp grant [" + std::to_string(remaining.start) + ", " +
              std::to_string(remaining.end) + ") lost " +
              std::to_string(remaining.attempts) +
              " times; giving up (RetryPolicy bound)"));
          return;
        }
        counters.Add(Counter::kChunksReclaimed, 1);
        pending.push_front(remaining);
      }
    }
    int slot_index = static_cast<int>(&w - slots.data());
    if (job_status.ok() && consumed < count && respawns_left > 0) {
      --respawns_left;
      fail(SpawnWorker(ctx, &slots, slot_index, produce));
    }
  };

  while (job_status.ok()) {
    // Issue one grant to every idle survivor.
    for (WorkerSlot& w : slots) {
      if (w.fd < 0 || w.busy || pending.empty()) continue;
      TaskGrant g = pending.front();
      pending.pop_front();
      g.attempts += 1;
      std::string payload;
      AppendRaw(&payload, static_cast<uint64_t>(g.start));
      AppendRaw(&payload, static_cast<uint64_t>(g.end));
      w.busy = true;
      w.grant = g;
      w.next_index = g.start;
      counters.Add(Counter::kChunkClaims, 1);
      if (tracer != nullptr) {
        w.span = tracer->BeginSpan(span_category::kTask, "grant", op.id());
        tracer->AddSpanArg(w.span, "worker",
                           static_cast<uint64_t>(&w - slots.data()));
        tracer->AddSpanArg(w.span, "first_index", g.start);
        tracer->AddSpanArg(w.span, "num_indices", g.end - g.start);
      }
      Status sent = WriteMpFrame(w.fd, MpFrameType::kGrant, payload,
                                 &net_bytes);
      if (!sent.ok()) handle_death(w);  // reclaims the grant just issued
      if (!job_status.ok()) break;
    }
    if (!job_status.ok()) break;

    bool any_busy = false;
    bool any_alive = false;
    for (const WorkerSlot& w : slots) {
      any_busy |= w.busy;
      any_alive |= w.fd >= 0;
    }
    // Done only once every result is consumed AND every kDone is in, so
    // final counter deltas are not dropped on the floor.
    if (consumed == count && !any_busy) break;
    if (!any_alive) {
      fail(Status::IOError(
          "all mp workers lost with work pending (spawned " +
          std::to_string(
              counters.value(Counter::kWorkersSpawned)) +
          ", consumed " + std::to_string(consumed) + "/" +
          std::to_string(count) + ")"));
      break;
    }

    std::vector<pollfd> fds;
    std::vector<size_t> fd_slot;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].fd < 0) continue;
      fds.push_back({slots[i].fd, POLLIN, 0});
      fd_slot.push_back(i);
    }
    int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail(Status::IOError(std::string("mp poll failed: ") +
                           std::strerror(errno)));
      break;
    }
    for (size_t i = 0; i < fds.size() && job_status.ok(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerSlot& w = slots[fd_slot[i]];
      if (w.fd < 0) continue;  // died while handling an earlier fd
      StatusOr<MpFrame> frame = ReadMpFrame(w.fd, &net_bytes);
      if (!frame.ok()) {
        // NotFound is the worker's clean close, IOError a torn frame —
        // both mean the worker is gone. Corruption means the stream
        // itself is bad, which no respawn fixes: fail the job.
        if (frame.status().code() == Status::Code::kCorruption) {
          fail(frame.status());
        } else {
          handle_death(w);
        }
        continue;
      }
      WireCursor cur{frame->payload.data(),
                     frame->payload.data() + frame->payload.size()};
      switch (frame->type) {
        case MpFrameType::kResult: {
          uint64_t index = 0;
          if (!ReadRaw(&cur, &index).ok() || !w.busy ||
              index != w.next_index || index >= w.grant.end) {
            fail(Status::Corruption("mp result frame out of order"));
            break;
          }
          frame->payload.erase(0, sizeof(index));
          Status integrated = consume(index, std::move(frame->payload));
          if (!integrated.ok()) {
            fail(std::move(integrated));
            break;
          }
          ++w.next_index;
          ++consumed;
          break;
        }
        case MpFrameType::kDone: {
          uint64_t start = 0;
          uint64_t end = 0;
          uint32_t num_deltas = 0;
          if (!ReadRaw(&cur, &start).ok() || !ReadRaw(&cur, &end).ok() ||
              !ReadRaw(&cur, &num_deltas).ok() || !w.busy ||
              start != w.grant.start || end != w.grant.end ||
              w.next_index != w.grant.end) {
            fail(Status::Corruption("mp done frame disagrees with grant"));
            break;
          }
          bool deltas_ok = true;
          for (uint32_t d = 0; d < num_deltas && deltas_ok; ++d) {
            uint32_t id = 0;
            uint64_t delta = 0;
            deltas_ok = ReadRaw(&cur, &id).ok() &&
                        ReadRaw(&cur, &delta).ok() && id < kNumCounters;
            if (deltas_ok) {
              counters.Add(static_cast<Counter>(id), delta);
            }
          }
          if (!deltas_ok) {
            fail(Status::Corruption("mp done frame has bad counter deltas"));
            break;
          }
          w.busy = false;
          if (tracer != nullptr && w.span != 0) {
            tracer->EndSpan(w.span);
            w.span = 0;
          }
          break;
        }
        case MpFrameType::kTaskError: {
          uint64_t index = 0;
          uint32_t code = 0;
          std::string message;
          if (!ReadRaw(&cur, &index).ok() || !ReadRaw(&cur, &code).ok() ||
              !WireCodec<std::string>::Decode(&cur, &message).ok()) {
            fail(Status::Corruption("mp task-error frame malformed"));
            break;
          }
          counters.Add(Counter::kTasksFailed, 1);
          fail(StatusFromWire(code, std::move(message)));
          break;
        }
        default:
          fail(Status::Corruption("unexpected mp frame from worker"));
          break;
      }
    }
  }

  // Teardown: polite shutdown on success so workers _exit(0); SIGKILL on
  // failure so nobody blocks writing into a job the driver abandoned.
  for (WorkerSlot& w : slots) {
    if (w.fd < 0) continue;
    if (job_status.ok()) {
      WriteMpFrame(w.fd, MpFrameType::kShutdown, {}, &net_bytes)
          .ok();  // best effort; a straggler death here is harmless
    } else {
      ::kill(w.pid, SIGKILL);
    }
    ::close(w.fd);
    w.fd = -1;
    int wstatus = 0;
    while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
    if (tracer != nullptr && w.span != 0) {
      tracer->EndSpan(w.span);
      w.span = 0;
    }
  }
  counters.Add(Counter::kShuffleNetBytes, net_bytes);
  if (!job_status.ok()) op.AddArg("failed", 1);
  return job_status;
}

}  // namespace

std::unique_ptr<ExecutorBackend> MakeMultiProcessExecutorBackend(
    MpOptions options) {
  return std::make_unique<MpExecutorBackend>(std::move(options));
}

}  // namespace mp
}  // namespace st4ml
