#ifndef ST4ML_ENGINE_MP_DISTRIBUTED_H_
#define ST4ML_ENGINE_MP_DISTRIBUTED_H_

#include <string>
#include <utility>

#include "engine/execution_context.h"
#include "engine/mp/codec.h"

namespace st4ml {
namespace mp {

/// Runs an index-addressed job whose per-index work yields a `Result`
/// value, picking the path per backend:
///  - local executor: plain TryRunParallel with a direct, zero-copy store —
///    byte-for-byte the code path these operators always ran, so the local
///    backend pays nothing for the mp seam existing;
///  - distributed executor AND Result has a wire codec: the serialized
///    produce/consume seam — compute+encode in a worker process, decode+
///    store on the driver.
/// A Result type without a codec always runs locally, so operator coverage
/// degrades to in-process execution, never to a crash or a wrong answer.
///
/// `compute(i) -> StatusOr<Result>` must be self-contained under
/// distribution: read inherited (copy-on-write) inputs, return everything
/// through the Result — side effects on driver memory are invisible.
/// `store(i, Result&&) -> Status` runs with exactly-once, index-addressed
/// delivery and may reject a decoded Result whose SHAPE is wrong for the
/// job (a bucket count that disagrees with the target count, say) — the
/// codec can only prove a payload well-formed, not job-consistent. Under
/// the local path store may run concurrently (distinct i), matching the
/// slot-array discipline these operators already use.
template <typename Result, typename Compute, typename Store>
Status RunDistributed(ExecutionContext& ctx, const char* name, size_t count,
                      Compute&& compute, Store&& store) {
  if constexpr (kHasWireCodec<Result>) {
    if (ctx.distributed()) {
      return ctx.TryRunSerialized(
          name, count,
          [&](size_t i) -> StatusOr<std::string> {
            StatusOr<Result> result = compute(i);
            if (!result.ok()) return result.status();
            std::string bytes;
            EncodeToString(*result, &bytes);
            return bytes;
          },
          [&](size_t i, std::string bytes) -> Status {
            Result result{};
            ST4ML_RETURN_IF_ERROR(DecodeFromString(bytes, &result));
            return store(i, std::move(result));
          });
    }
  }
  return ctx.TryRunParallel(name, count, [&](size_t i) -> Status {
    StatusOr<Result> result = compute(i);
    if (!result.ok()) return result.status();
    return store(i, std::move(result).value());
  });
}

}  // namespace mp
}  // namespace st4ml

#endif  // ST4ML_ENGINE_MP_DISTRIBUTED_H_
