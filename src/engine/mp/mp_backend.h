#ifndef ST4ML_ENGINE_MP_MP_BACKEND_H_
#define ST4ML_ENGINE_MP_MP_BACKEND_H_

#include <memory>

#include "engine/executor_backend.h"

namespace st4ml {
namespace mp {

/// The multiprocess executor (DESIGN.md §14): RunSerialized forks
/// options.num_workers single-threaded worker processes per job (SPMD — the
/// workers inherit every input partition copy-on-write, Thrill-style, so no
/// closure ever crosses an exec boundary), drives them with task grants
/// over per-worker AF_UNIX socketpairs, and integrates their serialized
/// results on the driver in index order. Worker death (EOF/waitpid) is
/// first-class: unfinished grant indices are re-granted to survivors or
/// respawned replacements, bounded by options.retry.max_attempts per chunk
/// and options.max_respawns per job; a fully-lost worker set fails the job
/// with a clean Status.
///
/// The driver process must be effectively single-threaded while a job runs
/// (fork would duplicate only the calling thread); ExecutionContext
/// arranges this by pairing the backend with a pool of one.
std::unique_ptr<ExecutorBackend> MakeMultiProcessExecutorBackend(
    MpOptions options);

}  // namespace mp
}  // namespace st4ml

#endif  // ST4ML_ENGINE_MP_MP_BACKEND_H_
