#ifndef ST4ML_ENGINE_MP_CODEC_H_
#define ST4ML_ENGINE_MP_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ingest/wal.h"
#include "storage/records.h"

namespace st4ml {
namespace mp {

/// Lossless byte codecs for the values the multiprocess shuffle ships
/// between driver and workers (DESIGN.md §14). Decode(Encode(x)) == x
/// EXACTLY — doubles are memcpy'd bit patterns, strings are raw bytes — so
/// a distributed shuffle's Collect() output can be byte-identical to the
/// in-process run. Every Decode is bounds-checked against the payload and
/// length-plausibility-checked before allocating (the stpq reader's
/// discipline): corrupt bytes surface as Corruption, never as wrong
/// records or giant allocations.
///
/// Coverage is deliberately partial: operators whose element types carry no
/// codec (arbitrary user structs with pointers, closures) simply stay on
/// the in-process path — kHasWireCodec below is the compile-time gate.

/// A bounds-checked read cursor over one decoded payload.
struct WireCursor {
  const char* p = nullptr;
  const char* end = nullptr;

  size_t remaining() const { return static_cast<size_t>(end - p); }
};

template <typename T>
Status ReadRaw(WireCursor* cur, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (cur->remaining() < sizeof(T)) {
    return Status::Corruption("mp payload truncated mid-field");
  }
  std::memcpy(out, cur->p, sizeof(T));
  cur->p += sizeof(T);
  return Status::Ok();
}

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

namespace codec_internal {
template <typename T>
struct IsStdPair : std::false_type {};
template <typename A, typename B>
struct IsStdPair<std::pair<A, B>> : std::true_type {};
}  // namespace codec_internal

/// Primary template is undefined: a type is shippable iff one of the
/// specializations below matches (detected via kHasWireCodec).
template <typename T, typename Enable = void>
struct WireCodec;

namespace codec_internal {
template <typename T, typename Enable = void>
struct HasWireCodec : std::false_type {};
template <typename T>
struct HasWireCodec<
    T, std::void_t<decltype(WireCodec<T>::Encode(
           std::declval<const T&>(), std::declval<std::string*>()))>>
    : std::true_type {};
}  // namespace codec_internal

template <typename T>
inline constexpr bool kHasWireCodec = codec_internal::HasWireCodec<T>::value;

/// Trivially copyable scalars and PODs: raw bytes. std::pair is excluded
/// here so the recursive pair codec below is the unambiguous match.
template <typename T>
struct WireCodec<T, std::enable_if_t<std::is_trivially_copyable_v<T> &&
                                     !codec_internal::IsStdPair<T>::value>> {
  static void Encode(const T& v, std::string* out) { AppendRaw(out, v); }
  static Status Decode(WireCursor* cur, T* out) { return ReadRaw(cur, out); }
};

template <>
struct WireCodec<std::string> {
  static void Encode(const std::string& v, std::string* out) {
    AppendRaw(out, static_cast<uint32_t>(v.size()));
    out->append(v.data(), v.size());
  }
  static Status Decode(WireCursor* cur, std::string* out) {
    uint32_t len = 0;
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &len));
    if (cur->remaining() < len) {
      return Status::Corruption("mp payload declares oversized string");
    }
    out->assign(cur->p, len);
    cur->p += len;
    return Status::Ok();
  }
};

template <typename A, typename B>
struct WireCodec<std::pair<A, B>,
                 std::enable_if_t<kHasWireCodec<A> && kHasWireCodec<B>>> {
  static void Encode(const std::pair<A, B>& v, std::string* out) {
    WireCodec<A>::Encode(v.first, out);
    WireCodec<B>::Encode(v.second, out);
  }
  static Status Decode(WireCursor* cur, std::pair<A, B>* out) {
    ST4ML_RETURN_IF_ERROR(WireCodec<A>::Decode(cur, &out->first));
    return WireCodec<B>::Decode(cur, &out->second);
  }
};

/// The STPQ event wire format (PR 9 WAL payloads) reused verbatim:
/// id | x | y | time | u32 attr_len | attr.
template <>
struct WireCodec<EventRecord> {
  static void Encode(const EventRecord& v, std::string* out) {
    AppendEventWire(out, v);
  }
  static Status Decode(WireCursor* cur, EventRecord* out) {
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->id));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->x));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->y));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->time));
    return WireCodec<std::string>::Decode(cur, &out->attr);
  }
};

template <typename T, typename Alloc>
struct WireCodec<std::vector<T, Alloc>, std::enable_if_t<kHasWireCodec<T>>> {
  static void Encode(const std::vector<T, Alloc>& v, std::string* out) {
    AppendRaw(out, static_cast<uint64_t>(v.size()));
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !codec_internal::IsStdPair<T>::value) {
      out->append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(T));
    } else {
      for (const T& item : v) WireCodec<T>::Encode(item, out);
    }
  }
  static Status Decode(WireCursor* cur, std::vector<T, Alloc>* out) {
    uint64_t count = 0;
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &count));
    // Plausibility before allocation: every element costs at least
    // min_bytes on the wire, so a declared count the remaining payload
    // cannot hold is corruption, not an allocation request. Only the
    // memcpy'd layout pins the exact per-element size; field-encoded
    // elements (pairs, strings, records) can be arbitrarily small, so 1
    // byte is the safe floor there.
    constexpr bool memcpy_layout = std::is_trivially_copyable_v<T> &&
                                   !codec_internal::IsStdPair<T>::value;
    constexpr uint64_t min_bytes = memcpy_layout ? sizeof(T) : 1;
    if (count > cur->remaining() / min_bytes) {
      return Status::Corruption("mp payload declares implausible count: " +
                                std::to_string(count) + " elements in " +
                                std::to_string(cur->remaining()) + " bytes");
    }
    out->clear();
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !codec_internal::IsStdPair<T>::value) {
      out->resize(static_cast<size_t>(count));
      std::memcpy(out->data(), cur->p,
                  static_cast<size_t>(count) * sizeof(T));
      cur->p += count * sizeof(T);
    } else {
      out->resize(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ST4ML_RETURN_IF_ERROR(WireCodec<T>::Decode(cur, &(*out)[i]));
      }
    }
    return Status::Ok();
  }
};

template <>
struct WireCodec<TrajRecord> {
  static void Encode(const TrajRecord& v, std::string* out) {
    AppendRaw(out, v.id);
    WireCodec<std::vector<TrajPointRecord>>::Encode(v.points, out);
  }
  static Status Decode(WireCursor* cur, TrajRecord* out) {
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->id));
    return WireCodec<std::vector<TrajPointRecord>>::Decode(cur, &out->points);
  }
};

/// Whole-payload entry points. DecodeFromString demands FULL consumption:
/// trailing garbage after a well-formed value is Corruption, same as the
/// stpq reader's trailing-bytes check.
template <typename T>
void EncodeToString(const T& v, std::string* out) {
  WireCodec<T>::Encode(v, out);
}

template <typename T>
Status DecodeFromString(std::string_view bytes, T* out) {
  WireCursor cur{bytes.data(), bytes.data() + bytes.size()};
  ST4ML_RETURN_IF_ERROR(WireCodec<T>::Decode(&cur, out));
  if (cur.p != cur.end) {
    return Status::Corruption("mp payload has trailing garbage: " +
                              std::to_string(cur.remaining()) + " bytes");
  }
  return Status::Ok();
}

}  // namespace mp
}  // namespace st4ml

#endif  // ST4ML_ENGINE_MP_CODEC_H_
