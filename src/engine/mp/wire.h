#ifndef ST4ML_ENGINE_MP_WIRE_H_
#define ST4ML_ENGINE_MP_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace st4ml {
namespace mp {

/// Driver ↔ worker frame types of the multiprocess executor (DESIGN.md §14).
/// The protocol is strictly request/response per worker: the driver sends
/// one kGrant at a time; the worker answers with a kResult per index in
/// ascending order, then one kDone carrying its counter deltas — or a
/// kTaskError naming the first failed index. kShutdown ends a worker
/// cleanly; an EOF at any other moment is a worker death.
enum class MpFrameType : uint8_t {
  kGrant = 1,
  kResult = 2,
  kDone = 3,
  kTaskError = 4,
  kShutdown = 5,
};

/// Frame layout, CRC-framed like a PR 9 WAL record but with a leading type
/// byte: u8 type | u32 payload_len | u32 crc32(payload) | payload. All
/// little-endian (driver and workers are forks of one process).
inline constexpr size_t kMpFrameHeaderBytes = 1 + 4 + 4;

/// Declared-length cap, validated BEFORE the payload is read so a corrupt
/// length word can never drive a giant allocation. Shuffle buckets are the
/// largest payloads; 1 GiB bounds them generously.
inline constexpr uint32_t kMaxMpFramePayload = 1u << 30;

struct MpFrame {
  MpFrameType type = MpFrameType::kShutdown;
  std::string payload;
};

/// Serializes one frame (header + CRC + payload) onto `out`.
void AppendMpFrame(std::string* out, MpFrameType type,
                   std::string_view payload);

/// Writes one frame to `fd`, retrying short writes and EINTR. A peer that
/// vanished (EPIPE/ECONNRESET) is an IOError — the caller treats it as a
/// worker death, never a crash. When `net_bytes` is non-null it accumulates
/// the frame bytes actually written (kShuffleNetBytes accounting).
Status WriteMpFrame(int fd, MpFrameType type, std::string_view payload,
                    uint64_t* net_bytes);

/// Blocking read of exactly one frame from `fd`.
///  - clean EOF before any header byte → NotFound (the peer closed between
///    frames: a finished worker, or a driver done granting);
///  - EOF mid-frame → IOError "truncated" (a death or torn write);
///  - unknown type, oversized declared length, or CRC mismatch →
///    Corruption. The oversized check fires before any payload allocation.
StatusOr<MpFrame> ReadMpFrame(int fd, uint64_t* net_bytes);

}  // namespace mp
}  // namespace st4ml

#endif  // ST4ML_ENGINE_MP_WIRE_H_
