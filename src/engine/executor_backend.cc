#include "engine/executor_backend.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/env.h"
#include "engine/execution_context.h"

namespace st4ml {
namespace {

/// Parses the ST4ML_MP_KILL chaos knob ("<slot>:<grant>" / "all:<grant>")
/// into the scripted kill fields. Unparsable values leave the kill unarmed —
/// the knob is test-only and must never break a production run.
void ApplyEnvKillScript(MpOptions* mp) {
  std::string spec = GetEnvString("ST4ML_MP_KILL", "");
  if (spec.empty()) return;
  size_t colon = spec.find(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return;
  std::string slot = spec.substr(0, colon);
  char* end = nullptr;
  long grant = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || grant < 0) return;
  if (slot == "all") {
    mp->kill_worker = MpOptions::kEveryWorker;
    mp->kill_once = false;
  } else {
    char* slot_end = nullptr;
    long index = std::strtol(slot.c_str(), &slot_end, 10);
    if (slot_end == nullptr || *slot_end != '\0' || index < 0) return;
    mp->kill_worker = static_cast<int>(index);
  }
  mp->kill_after_grants = static_cast<int>(grant);
}

StatusOr<int> ParseWorkerCount(const std::string& text, size_t at) {
  if (at >= text.size()) {
    return Status::InvalidArgument("executor spec missing worker count: " +
                                   text);
  }
  char* end = nullptr;
  long n = std::strtol(text.c_str() + at, &end, 10);
  if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
    return Status::InvalidArgument("bad executor worker count in spec: " +
                                   text);
  }
  return static_cast<int>(n);
}

class LocalExecutorBackend : public ExecutorBackend {
 public:
  const char* name() const override { return "local"; }
  bool distributed() const override { return false; }

  Status RunSerialized(ExecutionContext& ctx, const char* job_name,
                       size_t count, const ProduceFn& produce,
                       const ConsumeFn& consume) override {
    // Produce fans out on the pool; results land index-addressed so the
    // consume pass below is deterministic regardless of completion order —
    // the exact contract the multiprocess backend honors over sockets.
    std::vector<std::string> results(count);
    ST4ML_RETURN_IF_ERROR(
        ctx.TryRunParallel(job_name, count, [&](size_t i) -> Status {
          StatusOr<std::string> bytes = produce(i);
          if (!bytes.ok()) return bytes.status();
          results[i] = std::move(bytes).value();
          return Status::Ok();
        }));
    for (size_t i = 0; i < count; ++i) {
      ST4ML_RETURN_IF_ERROR(consume(i, std::move(results[i])));
    }
    return Status::Ok();
  }
};

}  // namespace

StatusOr<ExecutorSpec> ExecutorSpec::Parse(const std::string& text) {
  ExecutorSpec spec;
  if (text.empty() || text == "local") return spec;
  if (text.rfind("local:", 0) == 0) {
    StatusOr<int> n = ParseWorkerCount(text, 6);
    if (!n.ok()) return n.status();
    spec.workers = *n;
    return spec;
  }
  if (text == "mp" || text.rfind("mp:", 0) == 0) {
    spec.kind = Kind::kMultiProcess;
    if (text == "mp") {
      spec.workers = spec.mp.num_workers;
    } else {
      StatusOr<int> n = ParseWorkerCount(text, 3);
      if (!n.ok()) return n.status();
      spec.workers = *n;
    }
    spec.mp.num_workers = spec.workers;
    ApplyEnvKillScript(&spec.mp);
    return spec;
  }
  return Status::InvalidArgument(
      "unknown executor spec \"" + text +
      "\" (expected local, local:<N>, or mp:<N>)");
}

std::string ExecutorSpec::ToString() const {
  if (kind == Kind::kLocal) {
    return workers == 0 ? "local" : "local:" + std::to_string(workers);
  }
  return "mp:" + std::to_string(workers);
}

std::unique_ptr<ExecutorBackend> MakeLocalExecutorBackend() {
  return std::make_unique<LocalExecutorBackend>();
}

}  // namespace st4ml
