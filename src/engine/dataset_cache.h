#ifndef ST4ML_ENGINE_DATASET_CACHE_H_
#define ST4ML_ENGINE_DATASET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/retry.h"
#include "common/status.h"
#include "observability/counters.h"
#include "observability/tracer.h"

namespace st4ml {

/// A byte-budgeted LRU cache of dataset partitions — the repo's stand-in for
/// Spark's executor-memory persistence (paper §3.3: many extractors reuse one
/// Selection→Conversion result instead of re-reading from disk).
///
/// Entries are keyed by (dataset id, partition index) and hold type-erased
/// partition data (`std::shared_ptr<const void>`; the typed layer lives in
/// engine/cached_dataset.h). Each entry carries its serialized size; the sum
/// of RESIDENT entry sizes never exceeds the budget after a Put or reload
/// returns. When an insert pushes the cache over budget, least-recently-used
/// entries are evicted until it fits:
///
///  - an entry with a spill function is written to an STPQ file under the
///    scratch dir (once — a re-eviction of a reloaded entry reuses the file)
///    and its memory dropped; the next Get transparently reloads it;
///  - an entry whose data already lives in a durable file (PutWithOrigin —
///    the Selector's loaded source files) just drops its memory and reloads
///    from the origin path;
///  - an entry with neither is erased outright and the next Get misses.
///
/// A partition larger than the whole budget is therefore spilled immediately
/// on insert, and a budget of 0 disables the cache entirely: Put and Get
/// become inert pass-throughs that touch no counters.
///
/// Spill writes and reloads run under the cache's RetryPolicy and go through
/// the STPQ readers/writers, so the stpq/read and stpq/write fault-injection
/// sites and the kTasksRetried accounting apply to them exactly as they do
/// to selection I/O (DESIGN.md §8). Every spill/reload also records an
/// io-category span ("cache/spill" / "cache/reload") when a tracer is
/// attached, and feeds the kCache* counters.
///
/// Thread-safe: one mutex guards the whole cache. Get and Put are called
/// from RunParallel worker tasks (the Selector's per-file loads), so spill
/// and reload I/O holding the lock serializes concurrent cache access — an
/// accepted cost; cache I/O is the slow path by definition and the fast
/// path (a resident hit) is a map lookup and a list splice.
class DatasetCache {
 public:
  /// `budget_bytes == 0` disables caching; kUnbounded never evicts.
  static constexpr uint64_t kUnbounded = ~uint64_t{0};

  struct Options {
    uint64_t budget_bytes = 0;
    /// Spill directory; created lazily on first spill and removed (with its
    /// contents) by the destructor when the cache created it. Empty picks
    /// <tmp>/st4ml_cache_<pid>_<seq>.
    std::string scratch_dir;
    /// Wraps every spill write and reload read; transient IOErrors (disk
    /// pressure, injected faults) are re-attempted before the operation
    /// fails, each re-attempt bumping kTasksRetried.
    RetryPolicy retry;
  };

  /// Writes `data` (a type-erased partition) to `path`; adds the bytes
  /// written to *io_bytes.
  using SpillFn = std::function<Status(const void* data,
                                       const std::string& path,
                                       uint64_t* io_bytes)>;
  /// Reads a partition back from `path`; adds the bytes read to *io_bytes.
  using ReloadFn = std::function<StatusOr<std::shared_ptr<const void>>(
      const std::string& path, uint64_t* io_bytes)>;

  /// `counters` outlives the cache (the owning ExecutionContext guarantees
  /// this — its registry member is declared before the cache).
  DatasetCache(Options options, CounterRegistry* counters);
  ~DatasetCache();

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  bool enabled() const { return options_.budget_bytes > 0; }
  const Options& options() const { return options_; }

  /// Attaches the tracer spill/reload spans are recorded on (nullptr
  /// detaches). Forwarded by ExecutionContext::set_tracer.
  void set_tracer(Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// A fresh dataset id, never handed out before (CachedDataset handles).
  uint64_t NewDatasetId();

  /// A stable id for a named dataset: the same name always maps to the same
  /// id within one cache, so independent Selectors loading the same file
  /// share one entry.
  uint64_t InternDatasetId(const std::string& name);

  /// Inserts a partition, replacing any previous entry under the same key,
  /// then evicts LRU entries until the resident bytes fit the budget (the
  /// inserted entry is evicted last — and immediately, if it alone exceeds
  /// the budget). No-op when the cache is disabled.
  void Put(uint64_t dataset_id, uint64_t partition,
           std::shared_ptr<const void> data, uint64_t bytes, SpillFn spill,
           ReloadFn reload);

  /// Put for data that already has a durable on-disk copy at `origin_path`
  /// (the Selector's loaded STPQ files): eviction drops the memory without
  /// writing anything and Get reloads from the origin.
  void PutWithOrigin(uint64_t dataset_id, uint64_t partition,
                     std::shared_ptr<const void> data, uint64_t bytes,
                     std::string origin_path, ReloadFn reload);

  /// Looks a partition up. Returns (in order of preference):
  ///  - the resident data — a pure hit;
  ///  - data reloaded from the entry's spill/origin file — a hit plus
  ///    kCacheReloadBytes, re-resident when it fits the budget;
  ///  - nullptr when the key was never inserted or its entry was dropped —
  ///    a miss, the caller recomputes;
  ///  - a non-OK Status when a reload failed after retries.
  /// Disabled caches always return nullptr without counting a miss.
  StatusOr<std::shared_ptr<const void>> Get(uint64_t dataset_id,
                                            uint64_t partition);

  /// Drops every entry of `dataset_id`, deleting any spill files the cache
  /// wrote for it (origin files are left alone).
  void DropDataset(uint64_t dataset_id);

  /// A consistent point-in-time view, for tests and the bench.
  struct Stats {
    uint64_t resident_bytes = 0;
    uint64_t resident_entries = 0;
    uint64_t spilled_entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t spill_bytes = 0;
    uint64_t reload_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Key {
    uint64_t dataset_id = 0;
    uint64_t partition = 0;
    bool operator==(const Key& other) const {
      return dataset_id == other.dataset_id && partition == other.partition;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // splitmix64-style mix; the two ids are small sequential integers.
      uint64_t z = key.dataset_id * 0x9e3779b97f4a7c15ULL + key.partition;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  struct Entry {
    std::shared_ptr<const void> data;  // null while spilled / dropped
    uint64_t bytes = 0;
    SpillFn spill;
    ReloadFn reload;
    std::string disk_path;        // spill target, or the origin file
    bool on_disk = false;         // disk_path currently holds the data
    bool owns_disk_file = false;  // the cache wrote disk_path (scratch spill)
    std::list<Key>::iterator lru_it;  // valid only while resident
    bool resident = false;
  };

  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Evicts from the LRU end until resident bytes fit the budget. An entry
  /// whose spill write fails after retries is kept resident (over budget)
  /// rather than lost; the failure is logged once per cache.
  void EvictUntilWithinBudgetLocked();
  /// Evicts the LRU entry; false when its spill failed and it was kept.
  bool EvictOneLocked();
  std::string SpillPathLocked(const Key& key);
  void MakeResidentLocked(const Key& key, Entry* entry,
                          std::shared_ptr<const void> data);

  Options options_;
  CounterRegistry* counters_;
  std::atomic<Tracer*> tracer_{nullptr};

  mutable std::mutex mu_;
  std::list<Key> lru_;  // front = least recently used
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::unordered_map<std::string, uint64_t> interned_;
  uint64_t next_dataset_id_ = 1;
  uint64_t resident_bytes_ = 0;
  Stats stats_;  // resident_* fields are filled at stats() time
  bool scratch_created_ = false;
  bool spill_failure_logged_ = false;
};

}  // namespace st4ml

#endif  // ST4ML_ENGINE_DATASET_CACHE_H_
