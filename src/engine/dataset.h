#ifndef ST4ML_ENGINE_DATASET_H_
#define ST4ML_ENGINE_DATASET_H_

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "engine/execution_context.h"

namespace st4ml {

/// Rough serialized size of a value, used for shuffle byte accounting.
/// Heap-owning standard containers are charged for their payload; everything
/// else is charged sizeof. An approximation — the benchmarks compare
/// strategies against each other, and both sides are measured the same way.
template <typename T>
size_t ApproxShuffleBytes(const T& value);

namespace internal {

template <typename T>
struct IsStdVector : std::false_type {};
template <typename U, typename A>
struct IsStdVector<std::vector<U, A>> : std::true_type {};

template <typename T>
struct IsStdPair : std::false_type {};
template <typename A, typename B>
struct IsStdPair<std::pair<A, B>> : std::true_type {};

}  // namespace internal

template <typename T>
size_t ApproxShuffleBytes(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return sizeof(value) + value.size();
  } else if constexpr (internal::IsStdVector<T>::value) {
    size_t total = sizeof(value);
    for (const auto& element : value) total += ApproxShuffleBytes(element);
    return total;
  } else if constexpr (internal::IsStdPair<T>::value) {
    return ApproxShuffleBytes(value.first) + ApproxShuffleBytes(value.second);
  } else {
    return sizeof(value);
  }
}

/// An eagerly-evaluated, partitioned, immutable collection — the repo's
/// stand-in for an RDD. Operations fan out over partitions on the context's
/// worker pool and return a new Dataset; the partition data itself is shared
/// and copy-on-transform, so Dataset values are cheap to copy and cache.
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() = default;

  /// Distributes `data` over `num_partitions` contiguous, even slices.
  static Dataset<T> Parallelize(std::shared_ptr<ExecutionContext> ctx,
                                std::vector<T> data, size_t num_partitions) {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
    Partitions parts(num_partitions);
    size_t n = data.size();
    size_t base = n / num_partitions;
    size_t extra = n % num_partitions;
    size_t offset = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      size_t len = base + (p < extra ? 1 : 0);
      parts[p].reserve(len);
      for (size_t i = 0; i < len; ++i) {
        parts[p].push_back(std::move(data[offset + i]));
      }
      offset += len;
    }
    return FromPartitions(std::move(ctx), std::move(parts));
  }

  /// Wraps explicit partitions (used by the shuffle paths and partitioners).
  static Dataset<T> FromPartitions(std::shared_ptr<ExecutionContext> ctx,
                                   Partitions parts) {
    Dataset<T> ds;
    ds.ctx_ = std::move(ctx);
    ds.parts_ = std::make_shared<const Partitions>(std::move(parts));
    return ds;
  }

  const std::shared_ptr<ExecutionContext>& context() const { return ctx_; }
  size_t num_partitions() const { return parts_ ? parts_->size() : 0; }
  const std::vector<T>& partition(size_t i) const { return (*parts_)[i]; }

  template <typename F>
  auto Map(F fn) const {
    using U = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    return MapPartitions([fn](const std::vector<T>& part) {
      std::vector<U> out;
      out.reserve(part.size());
      for (const T& value : part) out.push_back(fn(value));
      return out;
    });
  }

  template <typename F>
  Dataset<T> Filter(F pred) const {
    return MapPartitions([pred](const std::vector<T>& part) {
      std::vector<T> out;
      for (const T& value : part) {
        if (pred(value)) out.push_back(value);
      }
      return out;
    });
  }

  /// `fn` maps one element to a container of output elements.
  template <typename F>
  auto FlatMap(F fn) const {
    using Container = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    using U = typename Container::value_type;
    return MapPartitions([fn](const std::vector<T>& part) {
      std::vector<U> out;
      for (const T& value : part) {
        Container produced = fn(value);
        for (auto& element : produced) out.push_back(std::move(element));
      }
      return out;
    });
  }

  /// Named variant; the name labels the stage for debugging only.
  template <typename F>
  auto FlatMap(F fn, const std::string& stage_name) const {
    (void)stage_name;
    return FlatMap(fn);
  }

  /// `fn` maps a whole partition to a vector of outputs; the workhorse every
  /// other transform lowers to.
  template <typename F>
  auto MapPartitions(F fn) const {
    using OutVec = std::decay_t<decltype(fn(std::declval<const std::vector<T>&>()))>;
    using U = typename OutVec::value_type;
    ST4ML_CHECK(parts_ != nullptr) << "transform on an empty Dataset";
    typename Dataset<U>::Partitions out(parts_->size());
    const Partitions& in = *parts_;
    ctx_->RunParallel(in.size(),
                      [&](size_t p) { out[p] = fn(in[p]); });
    return Dataset<U>::FromPartitions(ctx_, std::move(out));
  }

  std::vector<T> Collect() const {
    std::vector<T> out;
    if (!parts_) return out;
    size_t total = 0;
    for (const auto& part : *parts_) total += part.size();
    out.reserve(total);
    for (const auto& part : *parts_) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  size_t Count() const {
    size_t total = 0;
    if (!parts_) return total;
    for (const auto& part : *parts_) total += part.size();
    return total;
  }

  /// Folds every partition with `seq_op`, then combines the per-partition
  /// results IN PARTITION ORDER with `comb_op` — deterministic by design.
  template <typename Acc, typename SeqOp, typename CombOp>
  Acc Aggregate(Acc zero, SeqOp seq_op, CombOp comb_op) const {
    if (!parts_) return zero;
    std::vector<Acc> partials(parts_->size(), zero);
    const Partitions& in = *parts_;
    ctx_->RunParallel(in.size(), [&](size_t p) {
      Acc acc = zero;
      for (const T& value : in[p]) acc = seq_op(std::move(acc), value);
      partials[p] = std::move(acc);
    });
    Acc result = std::move(zero);
    for (Acc& partial : partials) {
      result = comb_op(std::move(result), std::move(partial));
    }
    return result;
  }

  /// Round-robin redistribution into `num_partitions` slices. A real shuffle:
  /// every record moves, and the metrics say so.
  Dataset<T> Repartition(size_t num_partitions) const {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
    ST4ML_CHECK(parts_ != nullptr) << "transform on an empty Dataset";
    Partitions out(num_partitions);
    uint64_t records = 0;
    uint64_t bytes = 0;
    size_t next = 0;
    for (const auto& part : *parts_) {
      for (const T& value : part) {
        records += 1;
        bytes += ApproxShuffleBytes(value);
        out[next].push_back(value);
        next = (next + 1) % num_partitions;
      }
    }
    ctx_->metrics().AddShuffle(records, bytes);
    return FromPartitions(ctx_, std::move(out));
  }

 private:
  std::shared_ptr<ExecutionContext> ctx_;
  std::shared_ptr<const Partitions> parts_;
};

}  // namespace st4ml

#endif  // ST4ML_ENGINE_DATASET_H_
