#ifndef ST4ML_ENGINE_DATASET_H_
#define ST4ML_ENGINE_DATASET_H_

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "engine/execution_context.h"
#include "engine/mp/distributed.h"

namespace st4ml {

template <typename T>
class CachedDataset;

/// Rough serialized size of a value, used for shuffle byte accounting.
/// Heap-owning standard containers are charged for their payload; everything
/// else is charged sizeof. An approximation — the benchmarks compare
/// strategies against each other, and both sides are measured the same way.
template <typename T>
size_t ApproxShuffleBytes(const T& value);

namespace internal {

template <typename T>
struct IsStdVector : std::false_type {};
template <typename U, typename A>
struct IsStdVector<std::vector<U, A>> : std::true_type {};

template <typename T>
struct IsStdPair : std::false_type {};
template <typename A, typename B>
struct IsStdPair<std::pair<A, B>> : std::true_type {};

}  // namespace internal

template <typename T>
size_t ApproxShuffleBytes(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return sizeof(value) + value.size();
  } else if constexpr (internal::IsStdVector<T>::value) {
    size_t total = sizeof(value);
    for (const auto& element : value) total += ApproxShuffleBytes(element);
    return total;
  } else if constexpr (internal::IsStdPair<T>::value) {
    return ApproxShuffleBytes(value.first) + ApproxShuffleBytes(value.second);
  } else {
    return sizeof(value);
  }
}

/// An eagerly-evaluated, partitioned, immutable collection — the repo's
/// stand-in for an RDD. Operations fan out over partitions on the context's
/// worker pool and return a new Dataset; the partition data itself is shared
/// and copy-on-transform, so Dataset values are cheap to copy and cache.
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() = default;

  /// Distributes `data` over `num_partitions` contiguous, even slices.
  static Dataset<T> Parallelize(std::shared_ptr<ExecutionContext> ctx,
                                std::vector<T> data, size_t num_partitions) {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
    Partitions parts(num_partitions);
    size_t n = data.size();
    size_t base = n / num_partitions;
    size_t extra = n % num_partitions;
    size_t offset = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      size_t len = base + (p < extra ? 1 : 0);
      parts[p].assign(std::make_move_iterator(data.begin() + offset),
                      std::make_move_iterator(data.begin() + offset + len));
      offset += len;
    }
    return FromPartitions(std::move(ctx), std::move(parts));
  }

  /// Wraps explicit partitions (used by the shuffle paths and partitioners).
  static Dataset<T> FromPartitions(std::shared_ptr<ExecutionContext> ctx,
                                   Partitions parts) {
    Dataset<T> ds;
    ds.ctx_ = std::move(ctx);
    ds.parts_ = std::make_shared<const Partitions>(std::move(parts));
    return ds;
  }

  const std::shared_ptr<ExecutionContext>& context() const { return ctx_; }
  size_t num_partitions() const { return parts_ ? parts_->size() : 0; }
  const std::vector<T>& partition(size_t i) const { return (*parts_)[i]; }

  template <typename F>
  auto Map(F fn) const {
    using U = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    return MapPartitions("map", [fn](const std::vector<T>& part) {
      std::vector<U> out;
      out.reserve(part.size());
      for (const T& value : part) out.push_back(fn(value));
      return out;
    });
  }

  template <typename F>
  Dataset<T> Filter(F pred) const {
    return MapPartitions("filter", [pred](const std::vector<T>& part) {
      std::vector<T> out;
      for (const T& value : part) {
        if (pred(value)) out.push_back(value);
      }
      return out;
    });
  }

  /// `fn` maps one element to a container of output elements.
  template <typename F>
  auto FlatMap(F fn) const {
    return FlatMapNamed("flat_map", fn);
  }

  /// Named variant; the name labels the operation span when tracing is on.
  template <typename F>
  auto FlatMap(F fn, const std::string& stage_name) const {
    return FlatMapNamed(stage_name.c_str(), fn);
  }

  /// `fn` maps a whole partition to a vector of outputs; the workhorse every
  /// other transform lowers to. `name` labels the operation span.
  template <typename F>
  auto MapPartitions(F fn) const {
    return MapPartitions("map_partitions", fn);
  }

  template <typename F>
  auto MapPartitions(const char* name, F fn) const {
    using OutVec = std::decay_t<decltype(fn(std::declval<const std::vector<T>&>()))>;
    using U = typename OutVec::value_type;
    ST4ML_CHECK(parts_ != nullptr) << "transform on an empty Dataset";
    typename Dataset<U>::Partitions out(parts_->size());
    const Partitions& in = *parts_;
    ctx_->RunParallel(name, in.size(),
                      [&](size_t p) { out[p] = fn(in[p]); });
    return Dataset<U>::FromPartitions(ctx_, std::move(out));
  }

  std::vector<T> Collect() const& {
    std::vector<T> out;
    if (!parts_) return out;
    out.reserve(Count());
    for (const auto& part : *parts_) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  /// Collect on an expiring Dataset: when this handle is the sole owner of
  /// the partitions no other Dataset can observe them, so the elements are
  /// moved out instead of copied. Shared partitions still copy.
  std::vector<T> Collect() && {
    std::vector<T> out;
    if (!parts_) return out;
    if (parts_.use_count() != 1) return static_cast<const Dataset&>(*this).Collect();
    out.reserve(Count());
    auto& parts = const_cast<Partitions&>(*parts_);
    for (auto& part : parts) {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }

  size_t Count() const {
    size_t total = 0;
    if (!parts_) return total;
    for (const auto& part : *parts_) total += part.size();
    return total;
  }

  /// Registers every partition with the context's DatasetCache and returns
  /// the cache-backed handle — the engine's `.persist()` (DESIGN.md §9).
  /// Requires an STPQ record type (the spill format) and the
  /// engine/cached_dataset.h header, where this is defined.
  CachedDataset<T> Persist() const;

  /// Folds every partition with `seq_op`, then combines the per-partition
  /// results IN PARTITION ORDER with `comb_op` — deterministic by design.
  /// `zero` is copied exactly once per partition (the vector fill below);
  /// the partition tasks fold into their slot without further copies.
  template <typename Acc, typename SeqOp, typename CombOp>
  Acc Aggregate(Acc zero, SeqOp seq_op, CombOp comb_op) const {
    if (!parts_) return zero;
    std::vector<Acc> partials(parts_->size(), zero);
    const Partitions& in = *parts_;
    ctx_->RunParallel("aggregate", in.size(), [&](size_t p) {
      Acc acc = std::move(partials[p]);
      for (const T& value : in[p]) acc = seq_op(std::move(acc), value);
      partials[p] = std::move(acc);
    });
    Acc result = std::move(zero);
    for (Acc& partial : partials) {
      result = comb_op(std::move(result), std::move(partial));
    }
    return result;
  }

  /// Round-robin redistribution into `num_partitions` slices. A real shuffle:
  /// every record moves, and the metrics say so. The record at global scan
  /// index g lands at position g / num_partitions of target g %
  /// num_partitions — exactly the layout a serial round-robin deal produces —
  /// so target partitions fill in parallel, each reserving its capacity up
  /// front and touching only its own records; the shuffle byte accounting
  /// folds inside the same per-target tasks.
  Dataset<T> Repartition(size_t num_partitions) const& {
    return RepartitionImpl(num_partitions, /*may_move=*/false);
  }

  /// Repartition on an expiring Dataset: when this handle is the sole owner
  /// of the source partitions they are consumed by the shuffle, so records
  /// move instead of copy.
  Dataset<T> Repartition(size_t num_partitions) && {
    return RepartitionImpl(num_partitions, parts_ != nullptr &&
                                               parts_.use_count() == 1);
  }

 private:
  /// Adds a FlatMap under an explicit operation-span name. Private so the
  /// public surface stays the two FlatMap spellings above.
  template <typename F>
  auto FlatMapNamed(const char* name, F fn) const {
    using Container = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    using U = typename Container::value_type;
    return MapPartitions(name, [fn](const std::vector<T>& part) {
      std::vector<U> out;
      for (const T& value : part) {
        Container produced = fn(value);
        for (auto& element : produced) out.push_back(std::move(element));
      }
      return out;
    });
  }

  Dataset<T> RepartitionImpl(size_t num_partitions, bool may_move) const {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
    ST4ML_CHECK(parts_ != nullptr) << "transform on an empty Dataset";
    const Partitions& in = *parts_;
    // Global scan index of each source partition's first record.
    std::vector<size_t> starts(in.size() + 1, 0);
    for (size_t p = 0; p < in.size(); ++p) {
      starts[p + 1] = starts[p] + in[p].size();
    }
    const size_t total = starts.back();
    Partitions out(num_partitions);
    ScopedSpan op(ctx_->tracer(), span_category::kOperation, "repartition");
    if (ctx_->num_workers() == 1 && !ctx_->distributed()) {
      // Sequential deal: with no parallelism to win, the streaming pass
      // beats the strided per-target pulls below on cache behavior.
      for (size_t t = 0; t < num_partitions; ++t) {
        out[t].reserve(total > t ? (total - t - 1) / num_partitions + 1 : 0);
      }
      uint64_t seq_bytes = 0;
      size_t next = 0;
      for (const auto& part : *parts_) {
        for (const T& value : part) {
          seq_bytes += ApproxShuffleBytes(value);
          if (may_move) {
            out[next].push_back(std::move(const_cast<T&>(value)));
          } else {
            out[next].push_back(value);
          }
          next = (next + 1) % num_partitions;
        }
      }
      internal::Counters(*ctx_).AddShuffle(ShuffleOp::kRepartition, total,
                                           seq_bytes);
      op.AddArg("records", total);
      op.AddArg("bytes", seq_bytes);
      return FromPartitions(ctx_, std::move(out));
    }
    // Per-target strided pulls; a distributed executor ships each target's
    // records (plus its byte tally) back over the socket, a local one
    // stores them directly. Round-robin by global index either way, so
    // every executor deals record g to partition g % num_partitions.
    using ScatterResult = std::pair<std::vector<T>, uint64_t>;
    std::vector<uint64_t> partial_bytes(num_partitions, 0);
    auto scatter_task = [&](size_t target) -> StatusOr<ScatterResult> {
      ScatterResult result{{}, 0};
      size_t count =
          total > target ? (total - target - 1) / num_partitions + 1 : 0;
      result.first.reserve(count);
      size_t p = 0;
      for (size_t g = target; g < total; g += num_partitions) {
        while (g >= starts[p + 1]) ++p;
        const T& value = in[p][g - starts[p]];
        result.second += ApproxShuffleBytes(value);
        if (may_move) {
          // Sole ownership of an expiring Dataset: no other handle can
          // observe the source partitions, so cannibalizing them is safe
          // (a distributed task cannibalizes its fork's copy-on-write
          // copy; the driver's source stays whole either way).
          result.first.push_back(std::move(const_cast<T&>(value)));
        } else {
          result.first.push_back(value);
        }
      }
      return result;
    };
    auto scatter_store = [&](size_t target, ScatterResult&& result) -> Status {
      partial_bytes[target] = result.second;
      out[target] = std::move(result.first);
      return Status::Ok();
    };
    Status scattered = mp::RunDistributed<ScatterResult>(
        *ctx_, "repartition/scatter", num_partitions, scatter_task,
        scatter_store);
    if (!scattered.ok()) throw StatusError(std::move(scattered));
    uint64_t bytes = 0;
    for (uint64_t partial : partial_bytes) bytes += partial;
    internal::Counters(*ctx_).AddShuffle(ShuffleOp::kRepartition, total,
                                         bytes);
    op.AddArg("records", total);
    op.AddArg("bytes", bytes);
    return FromPartitions(ctx_, std::move(out));
  }

  std::shared_ptr<ExecutionContext> ctx_;
  std::shared_ptr<const Partitions> parts_;
};

}  // namespace st4ml

#endif  // ST4ML_ENGINE_DATASET_H_
