#ifndef ST4ML_ENGINE_EXECUTOR_BACKEND_H_
#define ST4ML_ENGINE_EXECUTOR_BACKEND_H_

#include <functional>
#include <memory>
#include <string>

#include "common/retry.h"
#include "common/status.h"

namespace st4ml {

class ExecutionContext;

/// Knobs of the multiprocess executor (DESIGN.md §14). Everything except
/// num_workers is fault-tolerance machinery: `retry.max_attempts` bounds how
/// often one task grant may be re-issued after worker deaths, max_respawns
/// bounds replacement forks, and the kill_* fields script the
/// `mp/worker_kill` fault site (worker_death_test, chaos runs): the matching
/// worker raises SIGKILL on receipt of its kill_after_grants-th grant, after
/// sending kill_after_results results of it.
struct MpOptions {
  static constexpr int kNoKill = -1;
  static constexpr int kEveryWorker = -2;

  int num_workers = 2;
  /// max_attempts bounds grant attempts per chunk (initial issue counts as
  /// attempt 1); the backoff fields are unused — a re-grant goes out as soon
  /// as a survivor is idle.
  RetryPolicy retry;
  /// Replacement workers forked after deaths, per job, beyond the initial N.
  int max_respawns = 2;

  int kill_worker = kNoKill;   ///< slot to kill, or kEveryWorker
  int kill_after_grants = 0;   ///< 0-based index of the fatal grant
  int kill_after_results = 0;  ///< results sent inside the fatal grant first
  /// Disarm the scripted kill after the first death the driver observes, so
  /// a multi-job pipeline loses exactly one worker overall (and respawned
  /// workers in the same slot survive).
  bool kill_once = true;
};

/// Parsed `--executor=` / `ST4ML_EXECUTOR` value: which executor backend an
/// ExecutionContext runs on. Mirrors the accel BackendRegistry selection
/// shape (spec string, env override, per-tool flag).
struct ExecutorSpec {
  enum class Kind { kLocal, kMultiProcess };

  Kind kind = Kind::kLocal;
  /// kLocal: thread-pool size, 0 = hardware concurrency.
  /// kMultiProcess: worker process count (>= 1).
  int workers = 0;
  /// Multiprocess knobs. Parse() fills the kill script from ST4ML_MP_KILL
  /// ("<slot>:<grant>" or "all:<grant>") so CLI chaos runs can script a
  /// worker death without code changes; tests set the fields directly.
  MpOptions mp;

  /// Accepts "local", "local:<N>" and "mp:<N>" (N >= 1). Empty input means
  /// "local". Anything else is InvalidArgument naming the bad spec.
  static StatusOr<ExecutorSpec> Parse(const std::string& text);

  std::string ToString() const;
};

/// How an ExecutionContext executes jobs. The seam is intentionally narrow:
/// generic RunParallel closures mutate driver memory and cannot cross a
/// process boundary, so backends only implement the SERIALIZED task path —
/// an index-addressed job whose per-index work yields bytes (`produce`) that
/// the driver integrates in index order (`consume`). The local backend runs
/// produce on the thread pool and consume inline; the multiprocess backend
/// runs produce in forked worker processes and ships the bytes over
/// sockets. Operators that cannot serialize their task results simply stay
/// on RunParallel/TryRunParallel, which every backend supports via the
/// context's own pool.
class ExecutorBackend {
 public:
  using ProduceFn = std::function<StatusOr<std::string>(size_t)>;
  using ConsumeFn = std::function<Status(size_t, std::string)>;

  virtual ~ExecutorBackend() = default;

  virtual const char* name() const = 0;

  /// True when produce runs in another process: operators must not rely on
  /// produce-side writes to driver memory (caches, tracers, slot arrays)
  /// being visible — everything comes back through the returned bytes.
  virtual bool distributed() const = 0;

  /// Runs produce(0..count-1) on the backend's executors and feeds every
  /// result to consume exactly once, in arbitrary completion order but
  /// index-addressed. Blocks until all indices are consumed or the job
  /// fails; first error wins, remaining work is dropped (claim-and-drop,
  /// DESIGN.md §8). `name` labels the operation span.
  virtual Status RunSerialized(ExecutionContext& ctx, const char* name,
                               size_t count, const ProduceFn& produce,
                               const ConsumeFn& consume) = 0;
};

/// The in-process backend: produce on the context's thread pool, consume on
/// the driver thread after the job drains.
std::unique_ptr<ExecutorBackend> MakeLocalExecutorBackend();

}  // namespace st4ml

#endif  // ST4ML_ENGINE_EXECUTOR_BACKEND_H_
