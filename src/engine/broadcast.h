#ifndef ST4ML_ENGINE_BROADCAST_H_
#define ST4ML_ENGINE_BROADCAST_H_

#include <memory>
#include <utility>

#include "engine/execution_context.h"

namespace st4ml {

/// A read-only value shipped once to every worker (Spark's sc.broadcast).
/// In-process this is just a shared pointer, but creating one still bumps the
/// broadcast counter so the ablation benchmarks can show how the R-tree
/// conversion strategy trades one broadcast for a full shuffle.
template <typename T>
class Broadcast {
 public:
  Broadcast() = default;

  const T& value() const { return *value_; }
  const T* get() const { return value_.get(); }
  const T& operator*() const { return *value_; }
  const T* operator->() const { return value_.get(); }
  explicit operator bool() const { return value_ != nullptr; }

  template <typename U>
  friend Broadcast<U> MakeBroadcast(const std::shared_ptr<ExecutionContext>&,
                                    U value);

 private:
  explicit Broadcast(std::shared_ptr<const T> value)
      : value_(std::move(value)) {}

  std::shared_ptr<const T> value_;
};

template <typename T>
Broadcast<T> MakeBroadcast(const std::shared_ptr<ExecutionContext>& ctx,
                           T value) {
  internal::Counters(*ctx).AddBroadcast();
  return Broadcast<T>(std::make_shared<const T>(std::move(value)));
}

}  // namespace st4ml

#endif  // ST4ML_ENGINE_BROADCAST_H_
