#ifndef ST4ML_ENGINE_PAIR_OPS_H_
#define ST4ML_ENGINE_PAIR_OPS_H_

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/dataset.h"

namespace st4ml {

/// Hash for std::pair keys (ReduceByKey over composite keys).
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t h1 = std::hash<A>{}(p.first);
    size_t h2 = std::hash<B>{}(p.second);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

namespace internal {

/// Sorts a keyed partition by key when the key type is ordered, making
/// shuffle output deterministic regardless of hash-map iteration order.
template <typename K, typename V>
void SortByKeyIfOrdered(std::vector<std::pair<K, V>>* part) {
  if constexpr (requires(const K& a, const K& b) { a < b; }) {
    std::sort(part->begin(), part->end(),
              [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                return a.first < b.first;
              });
  }
}

}  // namespace internal

/// Spark's reduceByKey: map-side combine inside each partition, then a hash
/// shuffle of the combined pairs, then a target-side reduce. Only the
/// combined pairs cross the "network", and the metrics account for exactly
/// those records.
template <typename K, typename V, typename Reduce,
          typename Hash = std::hash<K>>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     Reduce reduce) {
  size_t n = ds.num_partitions();
  if (n == 0) return ds;
  const auto& ctx = ds.context();

  // Map-side combine.
  std::vector<std::vector<std::pair<K, V>>> combined(n);
  ctx->RunParallel(n, [&](size_t p) {
    std::unordered_map<K, V, Hash> acc;
    for (const auto& [key, value] : ds.partition(p)) {
      auto it = acc.find(key);
      if (it == acc.end()) {
        acc.emplace(key, value);
      } else {
        it->second = reduce(it->second, value);
      }
    }
    combined[p].assign(acc.begin(), acc.end());
    internal::SortByKeyIfOrdered<K, V>(&combined[p]);
  });

  // Shuffle accounting: every combined pair moves to its key's target.
  uint64_t records = 0;
  uint64_t bytes = 0;
  for (const auto& part : combined) {
    records += part.size();
    for (const auto& kv : part) bytes += ApproxShuffleBytes(kv);
  }
  ctx->metrics().AddShuffle(records, bytes);

  // Target-side reduce.
  typename Dataset<std::pair<K, V>>::Partitions out(n);
  ctx->RunParallel(n, [&](size_t target) {
    std::unordered_map<K, V, Hash> acc;
    for (const auto& part : combined) {
      for (const auto& [key, value] : part) {
        if (Hash{}(key) % n != target) continue;
        auto it = acc.find(key);
        if (it == acc.end()) {
          acc.emplace(key, value);
        } else {
          it->second = reduce(it->second, value);
        }
      }
    }
    out[target].assign(acc.begin(), acc.end());
    internal::SortByKeyIfOrdered<K, V>(&out[target]);
  });
  return Dataset<std::pair<K, V>>::FromPartitions(ctx, std::move(out));
}

/// Spark's groupByKey: EVERY record crosses the shuffle — the expensive
/// cousin ReduceByKey exists to avoid. Value order within a group follows
/// (partition, offset) order, so results are deterministic.
template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds) {
  size_t n = ds.num_partitions();
  const auto& ctx = ds.context();
  if (n == 0) return Dataset<std::pair<K, std::vector<V>>>();

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (size_t p = 0; p < n; ++p) {
    records += ds.partition(p).size();
    for (const auto& kv : ds.partition(p)) bytes += ApproxShuffleBytes(kv);
  }
  ctx->metrics().AddShuffle(records, bytes);

  typename Dataset<std::pair<K, std::vector<V>>>::Partitions out(n);
  ctx->RunParallel(n, [&](size_t target) {
    std::unordered_map<K, std::vector<V>, Hash> groups;
    for (size_t p = 0; p < n; ++p) {
      for (const auto& [key, value] : ds.partition(p)) {
        if (Hash{}(key) % n != target) continue;
        groups[key].push_back(value);
      }
    }
    out[target].assign(groups.begin(), groups.end());
    internal::SortByKeyIfOrdered<K, std::vector<V>>(&out[target]);
  });
  return Dataset<std::pair<K, std::vector<V>>>::FromPartitions(ctx,
                                                               std::move(out));
}

}  // namespace st4ml

#endif  // ST4ML_ENGINE_PAIR_OPS_H_
