#ifndef ST4ML_ENGINE_PAIR_OPS_H_
#define ST4ML_ENGINE_PAIR_OPS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accel/hash_mix.h"
#include "accel/kernels.h"
#include "common/status.h"
#include "engine/append_only_map.h"
#include "engine/dataset.h"
#include "engine/mp/distributed.h"

namespace st4ml {

/// Hash for std::pair keys (ReduceByKey over composite keys). Defined as
/// exactly accel::HashCombine of the component hashes — the boost-style
/// combine this used to be was weak for low-entropy components (dense cell
/// ids x small hour bins skewed `hash % num_targets` bucketing); the
/// SplitMix64 finalizer restores full avalanche, and the batched
/// CombineHashes kernel reproduces it bit-for-bit (accel/hash_mix.h).
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    uint64_t h1 = static_cast<uint64_t>(std::hash<A>{}(p.first));
    uint64_t h2 = static_cast<uint64_t>(std::hash<B>{}(p.second));
    return static_cast<size_t>(HashCombine(h1, h2));
  }
};

namespace internal {

/// Ordered + equality-comparable keys take the fast shuffle paths: their
/// output order is normalized by a final key sort, so the intermediate
/// aggregation is free to use the insertion-ordered AppendOnlyMap. Other
/// keys fall back to std::unordered_map with the seed's exact insertion
/// sequence (their output order IS the map's iteration order).
template <typename K>
constexpr bool kOrderedKey = requires(const K& a, const K& b) {
  a < b;
  a == b;
};

/// Sorts a keyed partition by key when the key type is ordered, making
/// shuffle output deterministic regardless of hash-map iteration order.
template <typename K, typename V>
void SortByKeyIfOrdered(std::vector<std::pair<K, V>>* part) {
  if constexpr (kOrderedKey<K>) {
    std::sort(part->begin(), part->end(),
              [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                return a.first < b.first;
              });
  }
}

/// A map-side shuffle output: one source partition's records grouped by
/// target partition. `records` holds the partition's pairs permuted so that
/// all pairs bound for target t are contiguous at
/// [offsets[t], offsets[t+1]); within a bucket the source order is
/// preserved (the grouping is a stable counting sort). Each record's target
/// hash is computed exactly once, map-side.
template <typename K, typename V>
struct BucketedPartition {
  std::vector<std::pair<K, V>> records;
  std::vector<size_t> offsets;  // num_targets + 1 entries

  /// The bucket of pairs bound for `target`, as a [begin, end) range.
  std::pair<std::pair<K, V>*, std::pair<K, V>*> bucket(size_t target) {
    return {records.data() + offsets[target],
            records.data() + offsets[target + 1]};
  }
  size_t bucket_size(size_t target) const {
    return offsets[target + 1] - offsets[target];
  }
};

/// Stable counting sort of `input` into `num_targets` buckets keyed by
/// `Hash{}(key) % num_targets` — the map-side bucketing pass. Each record
/// is hashed exactly once and copied (or moved, when `input` is an rvalue)
/// exactly once into its bucket slot.
/// True when the map-side bucketing can hash keys in batches: the hasher is
/// PairHash over a std::pair key, so the combine step lifts out of the
/// per-record loop into the CombineHashes kernel (the component std::hash
/// calls stay scalar — for integral components they are trivial).
template <typename K, typename Hash>
constexpr bool kBatchablePairHash = false;
template <typename A, typename B>
constexpr bool kBatchablePairHash<std::pair<A, B>, PairHash> = true;

template <typename K, typename V, typename Hash, typename In>
BucketedPartition<K, V> BucketByTarget(In&& input, size_t num_targets) {
  constexpr bool kConsume = !std::is_lvalue_reference_v<In>;
  BucketedPartition<K, V> out;
  std::vector<uint32_t> targets(input.size());
  std::vector<size_t> counts(num_targets, 0);
  if constexpr (kBatchablePairHash<K, Hash>) {
    // Columnar fast path: component hashes into h1/h2 columns a chunk at a
    // time, one CombineHashes kernel call per chunk, scalar mod. Produces
    // exactly the per-record targets (PairHash IS HashCombine).
    constexpr size_t kChunk = 2048;
    std::array<uint64_t, kChunk> h1, h2, combined;
    const accel::KernelBackend& kernels = accel::Active();
    for (size_t base = 0; base < input.size(); base += kChunk) {
      const size_t len = std::min(kChunk, input.size() - base);
      for (size_t i = 0; i < len; ++i) {
        const K& key = input[base + i].first;
        h1[i] = static_cast<uint64_t>(
            std::hash<typename K::first_type>{}(key.first));
        h2[i] = static_cast<uint64_t>(
            std::hash<typename K::second_type>{}(key.second));
      }
      kernels.CombineHashes(h1.data(), h2.data(), len, combined.data());
      accel::BackendRegistry::Instance().CountBatch(len);
      for (size_t i = 0; i < len; ++i) {
        targets[base + i] = static_cast<uint32_t>(
            static_cast<size_t>(combined[i]) % num_targets);
        ++counts[targets[base + i]];
      }
    }
  } else {
    accel::BackendRegistry::Instance().CountFallback(input.size());
    for (size_t i = 0; i < input.size(); ++i) {
      targets[i] = static_cast<uint32_t>(Hash{}(input[i].first) % num_targets);
      ++counts[targets[i]];
    }
  }
  out.offsets.resize(num_targets + 1, 0);
  for (size_t t = 0; t < num_targets; ++t) {
    out.offsets[t + 1] = out.offsets[t] + counts[t];
  }
  std::vector<size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  out.records.resize(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    if constexpr (kConsume) {
      out.records[cursor[targets[i]]++] = std::move(input[i]);
    } else {
      out.records[cursor[targets[i]]++] = input[i];
    }
  }
  return out;
}

/// What one map-side shuffle task hands back: the bucketed partition plus
/// its record/byte accounting, all of it in one value so a distributed run
/// can ship the whole thing through the serialized seam and fold the
/// counters driver-side exactly like the in-process run does.
template <typename K, typename V>
struct MapShuffleResult {
  BucketedPartition<K, V> bucketed;
  uint64_t records = 0;
  uint64_t bytes = 0;
};

}  // namespace internal

namespace mp {

/// Shuffle bucket wire format (DESIGN.md §14): the per-target buckets a map
/// task produced, exactly as BucketByTarget laid them out — records then
/// offsets. Decode re-validates the layout invariants (monotone offsets
/// ending at the record count) so corrupt bytes can never drive bucket()
/// out of bounds.
template <typename K, typename V>
struct WireCodec<st4ml::internal::BucketedPartition<K, V>,
                 std::enable_if_t<kHasWireCodec<std::pair<K, V>>>> {
  static void Encode(const st4ml::internal::BucketedPartition<K, V>& v,
                     std::string* out) {
    WireCodec<std::vector<std::pair<K, V>>>::Encode(v.records, out);
    WireCodec<std::vector<size_t>>::Encode(v.offsets, out);
  }
  static Status Decode(WireCursor* cur,
                       st4ml::internal::BucketedPartition<K, V>* out) {
    using RecordVec = std::vector<std::pair<K, V>>;
    ST4ML_RETURN_IF_ERROR(WireCodec<RecordVec>::Decode(cur, &out->records));
    ST4ML_RETURN_IF_ERROR(
        WireCodec<std::vector<size_t>>::Decode(cur, &out->offsets));
    if (out->offsets.empty() || out->offsets.front() != 0 ||
        out->offsets.back() != out->records.size() ||
        !std::is_sorted(out->offsets.begin(), out->offsets.end())) {
      return Status::Corruption("mp shuffle bucket offsets malformed");
    }
    return Status::Ok();
  }
};

template <typename K, typename V>
struct WireCodec<st4ml::internal::MapShuffleResult<K, V>,
                 std::enable_if_t<kHasWireCodec<std::pair<K, V>>>> {
  static void Encode(const st4ml::internal::MapShuffleResult<K, V>& v,
                     std::string* out) {
    AppendRaw(out, v.records);
    AppendRaw(out, v.bytes);
    WireCodec<st4ml::internal::BucketedPartition<K, V>>::Encode(v.bucketed,
                                                                out);
  }
  static Status Decode(WireCursor* cur,
                       st4ml::internal::MapShuffleResult<K, V>* out) {
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->records));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->bytes));
    return WireCodec<st4ml::internal::BucketedPartition<K, V>>::Decode(
        cur, &out->bucketed);
  }
};

}  // namespace mp

/// Spark's reduceByKey: map-side combine inside each partition, then a hash
/// shuffle of the combined pairs, then a target-side reduce. Only the
/// combined pairs cross the "network", and the metrics account for exactly
/// those records.
///
/// The shuffle is bucketed map-side: each source partition combines its
/// pairs, counting-sorts them into per-target buckets in one pass (one hash
/// per record), and folds its shuffle-byte sum in the same task; each
/// target then merges only its own buckets — O(records) total instead of
/// the O(partitions x records) of a target-side rescan.
///
/// Determinism contract (identical to the seed's rescan shuffle): per key,
/// values are reduced in partition scan order map-side and in source
/// partition order target-side. For ordered keys both sides aggregate in an
/// insertion-ordered AppendOnlyMap and only the final unique-key output is
/// sorted; unordered keys take a std::unordered_map path whose insertion
/// sequence replicates the rescan's exactly.
///
/// Failure contract: the Try* spelling surfaces a failing task (a throwing
/// reducer, an injected engine fault) as a Status; the legacy spelling
/// wraps it and throws the equivalent StatusError on the driver.
template <typename K, typename V, typename Reduce,
          typename Hash = std::hash<K>>
StatusOr<Dataset<std::pair<K, V>>> TryReduceByKey(
    const Dataset<std::pair<K, V>>& ds, Reduce reduce) {
  size_t n = ds.num_partitions();
  if (n == 0) return ds;
  const auto& ctx = ds.context();
  ScopedSpan op(ctx->tracer(), span_category::kOperation, "reduce_by_key");

  // Map side: combine, bucket by target, and account shuffle volume. Under
  // a distributed executor the whole MapShuffleResult (per-target buckets +
  // accounting) crosses the socket; the local backend stores it directly.
  using MapResult = internal::MapShuffleResult<K, V>;
  std::vector<internal::BucketedPartition<K, V>> bucketed(n);
  std::vector<uint64_t> partial_records(n, 0);
  std::vector<uint64_t> partial_bytes(n, 0);
  auto map_task = [&](size_t p) -> StatusOr<MapResult> {
    const auto& part = ds.partition(p);
    std::vector<std::pair<K, V>> combined;
    if constexpr (internal::kOrderedKey<K>) {
      internal::AppendOnlyMap<K, V, Hash> acc(part.size());
      for (const auto& [key, value] : part) {
        acc.InsertOrCombine(key, value, reduce);
      }
      combined = std::move(acc).TakeEntries();
    } else {
      std::unordered_map<K, V, Hash> acc;
      for (const auto& [key, value] : part) {
        auto it = acc.find(key);
        if (it == acc.end()) {
          acc.emplace(key, value);
        } else {
          it->second = reduce(it->second, value);
        }
      }
      combined.assign(acc.begin(), acc.end());
    }
    MapResult result;
    for (const auto& kv : combined) result.bytes += ApproxShuffleBytes(kv);
    result.records = combined.size();
    result.bucketed =
        internal::BucketByTarget<K, V, Hash>(std::move(combined), n);
    return result;
  };
  auto map_store = [&](size_t p, MapResult&& result) -> Status {
    if (result.bucketed.offsets.size() != n + 1) {
      return Status::Corruption("mp shuffle bucket count disagrees with job");
    }
    partial_records[p] = result.records;
    partial_bytes[p] = result.bytes;
    bucketed[p] = std::move(result.bucketed);
    return Status::Ok();
  };
  ST4ML_RETURN_IF_ERROR(mp::RunDistributed<MapResult>(
      *ctx, "reduce_by_key/map", n, map_task, map_store));

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (size_t p = 0; p < n; ++p) {
    records += partial_records[p];
    bytes += partial_bytes[p];
  }
  internal::Counters(*ctx).AddShuffle(ShuffleOp::kReduceByKey, records, bytes);
  op.AddArg("records", records);
  op.AddArg("bytes", bytes);

  // Target side: reduce over this target's buckets only, visiting source
  // partitions in ascending order. Buckets hold at most one pair per key
  // per source (the map side combined them), so each key's values combine
  // in source partition order — the same reduce sequence the rescan shuffle
  // produced — and the final key sort (unique keys) pins the output.
  using MergeResult = std::vector<std::pair<K, V>>;
  typename Dataset<std::pair<K, V>>::Partitions out(n);
  auto merge_task = [&](size_t target) -> StatusOr<MergeResult> {
    MergeResult merged;
    if constexpr (internal::kOrderedKey<K>) {
      size_t bound = 0;
      for (const auto& b : bucketed) bound += b.bucket_size(target);
      internal::AppendOnlyMap<K, V, Hash> acc(bound);
      for (size_t p = 0; p < n; ++p) {
        auto [it, end] = bucketed[p].bucket(target);
        for (; it != end; ++it) {
          acc.InsertOrCombine(it->first, it->second, reduce);
        }
      }
      merged = std::move(acc).TakeEntries();
      internal::SortByKeyIfOrdered<K, V>(&merged);
    } else {
      std::unordered_map<K, V, Hash> acc;
      for (size_t p = 0; p < n; ++p) {
        auto [it, end] = bucketed[p].bucket(target);
        for (; it != end; ++it) {
          auto found = acc.find(it->first);
          if (found == acc.end()) {
            acc.emplace(it->first, std::move(it->second));
          } else {
            found->second = reduce(found->second, it->second);
          }
        }
      }
      merged.assign(acc.begin(), acc.end());
    }
    return merged;
  };
  auto merge_store = [&](size_t target, MergeResult&& merged) -> Status {
    out[target] = std::move(merged);
    return Status::Ok();
  };
  ST4ML_RETURN_IF_ERROR(mp::RunDistributed<MergeResult>(
      *ctx, "reduce_by_key/merge", n, merge_task, merge_store));
  return Dataset<std::pair<K, V>>::FromPartitions(ctx, std::move(out));
}

/// Legacy value-returning spelling: throws StatusError on failure.
template <typename K, typename V, typename Reduce,
          typename Hash = std::hash<K>>
[[deprecated("use TryReduceByKey: Status-returning, never throws")]]
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     Reduce reduce) {
  auto result = TryReduceByKey<K, V, Reduce, Hash>(ds, reduce);
  if (!result.ok()) throw StatusError(result.status());
  return std::move(result).value();
}

/// Spark's groupByKey: EVERY record crosses the shuffle — the expensive
/// cousin ReduceByKey exists to avoid. Value order within a group follows
/// (partition, offset) order, so results are deterministic.
///
/// Bucketed the same way as ReduceByKey: the map side counting-sorts each
/// source partition by target (stable, so (partition, offset) order
/// survives) and sums shuffle bytes in the same pass; the target side
/// touches only its own buckets. For ordered keys grouping is sort-based:
/// a stable sort of the source-ordered concatenation keeps each key's
/// values in (partition, offset) order, and each run becomes one group with
/// its vector sized exactly.
template <typename K, typename V, typename Hash = std::hash<K>>
StatusOr<Dataset<std::pair<K, std::vector<V>>>> TryGroupByKey(
    const Dataset<std::pair<K, V>>& ds) {
  size_t n = ds.num_partitions();
  const auto& ctx = ds.context();
  if (n == 0) return Dataset<std::pair<K, std::vector<V>>>();
  ScopedSpan op(ctx->tracer(), span_category::kOperation, "group_by_key");

  using MapResult = internal::MapShuffleResult<K, V>;
  std::vector<internal::BucketedPartition<K, V>> bucketed(n);
  std::vector<uint64_t> partial_records(n, 0);
  std::vector<uint64_t> partial_bytes(n, 0);
  auto bucket_task = [&](size_t p) -> StatusOr<MapResult> {
    const auto& part = ds.partition(p);
    MapResult result;
    for (const auto& kv : part) result.bytes += ApproxShuffleBytes(kv);
    result.records = part.size();
    result.bucketed = internal::BucketByTarget<K, V, Hash>(part, n);
    return result;
  };
  auto bucket_store = [&](size_t p, MapResult&& result) -> Status {
    if (result.bucketed.offsets.size() != n + 1) {
      return Status::Corruption("mp shuffle bucket count disagrees with job");
    }
    partial_records[p] = result.records;
    partial_bytes[p] = result.bytes;
    bucketed[p] = std::move(result.bucketed);
    return Status::Ok();
  };
  ST4ML_RETURN_IF_ERROR(mp::RunDistributed<MapResult>(
      *ctx, "group_by_key/bucket", n, bucket_task, bucket_store));

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (size_t p = 0; p < n; ++p) {
    records += partial_records[p];
    bytes += partial_bytes[p];
  }
  internal::Counters(*ctx).AddShuffle(ShuffleOp::kGroupByKey, records, bytes);
  op.AddArg("records", records);
  op.AddArg("bytes", bytes);

  using MergeResult = std::vector<std::pair<K, std::vector<V>>>;
  typename Dataset<std::pair<K, std::vector<V>>>::Partitions out(n);
  auto merge_task = [&](size_t target) -> StatusOr<MergeResult> {
    MergeResult merged;
    if constexpr (internal::kOrderedKey<K>) {
      // Two passes so every group vector is allocated exactly once at its
      // final size: the first sweep maps keys to dense indices (insertion
      // order) and counts group sizes, the second moves values into the
      // pre-reserved groups. Saves the ~log(group size) reallocations per
      // key that a single grow-as-you-go sweep pays.
      size_t bound = 0;
      for (const auto& b : bucketed) bound += b.bucket_size(target);
      internal::AppendOnlyMap<K, char, Hash> keys(bound);
      std::vector<uint32_t> rec_key(bound);
      std::vector<uint32_t> counts;
      counts.reserve(bound);
      size_t r = 0;
      for (size_t p = 0; p < n; ++p) {
        auto [it, end] = bucketed[p].bucket(target);
        for (; it != end; ++it) {
          size_t k = keys.GetIndex(it->first);
          if (k == counts.size()) counts.push_back(0);
          ++counts[k];
          rec_key[r++] = static_cast<uint32_t>(k);
        }
      }
      auto entries = std::move(keys).TakeEntries();
      merged.reserve(entries.size());
      for (size_t k = 0; k < entries.size(); ++k) {
        merged.emplace_back(std::move(entries[k].first), std::vector<V>());
        merged[k].second.reserve(counts[k]);
      }
      r = 0;
      for (size_t p = 0; p < n; ++p) {
        auto [it, end] = bucketed[p].bucket(target);
        for (; it != end; ++it) {
          merged[rec_key[r++]].second.push_back(std::move(it->second));
        }
      }
      internal::SortByKeyIfOrdered<K, std::vector<V>>(&merged);
    } else {
      std::unordered_map<K, std::vector<V>, Hash> groups;
      for (size_t p = 0; p < n; ++p) {
        auto [it, end] = bucketed[p].bucket(target);
        for (; it != end; ++it) {
          groups[it->first].push_back(std::move(it->second));
        }
      }
      merged.assign(groups.begin(), groups.end());
    }
    return merged;
  };
  auto merge_store = [&](size_t target, MergeResult&& merged) -> Status {
    out[target] = std::move(merged);
    return Status::Ok();
  };
  ST4ML_RETURN_IF_ERROR(mp::RunDistributed<MergeResult>(
      *ctx, "group_by_key/merge", n, merge_task, merge_store));
  return Dataset<std::pair<K, std::vector<V>>>::FromPartitions(ctx,
                                                               std::move(out));
}

/// Legacy value-returning spelling: throws StatusError on failure.
template <typename K, typename V, typename Hash = std::hash<K>>
[[deprecated("use TryGroupByKey: Status-returning, never throws")]]
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds) {
  auto result = TryGroupByKey<K, V, Hash>(ds);
  if (!result.ok()) throw StatusError(result.status());
  return std::move(result).value();
}

}  // namespace st4ml

#endif  // ST4ML_ENGINE_PAIR_OPS_H_
