#include "engine/dataset_cache.h"

#include <unistd.h>

#include <filesystem>
#include <system_error>

#include "common/logging.h"

namespace st4ml {

namespace fs = std::filesystem;

namespace {

std::string DefaultScratchDir() {
  static std::atomic<uint64_t> seq{0};
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / ("st4ml_cache_" + std::to_string(::getpid()) + "_" +
                  std::to_string(seq.fetch_add(1))))
      .string();
}

}  // namespace

DatasetCache::DatasetCache(Options options, CounterRegistry* counters)
    : options_(std::move(options)), counters_(counters) {
  if (options_.scratch_dir.empty()) options_.scratch_dir = DefaultScratchDir();
}

DatasetCache::~DatasetCache() {
  if (scratch_created_) {
    std::error_code ec;
    fs::remove_all(options_.scratch_dir, ec);  // best effort
  }
}

uint64_t DatasetCache::NewDatasetId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_dataset_id_++;
}

uint64_t DatasetCache::InternDatasetId(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = interned_.emplace(name, next_dataset_id_);
  if (inserted) ++next_dataset_id_;
  return it->second;
}

void DatasetCache::Put(uint64_t dataset_id, uint64_t partition,
                       std::shared_ptr<const void> data, uint64_t bytes,
                       SpillFn spill, ReloadFn reload) {
  if (!enabled()) return;
  Key key{dataset_id, partition};
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  if (entry.resident) {
    lru_.erase(entry.lru_it);
    resident_bytes_ -= entry.bytes;
    entry.resident = false;
  }
  entry.bytes = bytes;
  entry.spill = std::move(spill);
  entry.reload = std::move(reload);
  // A replacing Put invalidates any previous spill copy of this key.
  if (entry.owns_disk_file && entry.on_disk) {
    std::error_code ec;
    fs::remove(entry.disk_path, ec);
  }
  entry.on_disk = false;
  entry.owns_disk_file = false;
  MakeResidentLocked(key, &entry, std::move(data));
  EvictUntilWithinBudgetLocked();
}

void DatasetCache::PutWithOrigin(uint64_t dataset_id, uint64_t partition,
                                 std::shared_ptr<const void> data,
                                 uint64_t bytes, std::string origin_path,
                                 ReloadFn reload) {
  if (!enabled()) return;
  Key key{dataset_id, partition};
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  if (entry.resident) {
    lru_.erase(entry.lru_it);
    resident_bytes_ -= entry.bytes;
    entry.resident = false;
  }
  entry.bytes = bytes;
  entry.spill = nullptr;
  entry.reload = std::move(reload);
  entry.disk_path = std::move(origin_path);
  entry.on_disk = true;  // the origin file IS the durable copy
  entry.owns_disk_file = false;
  MakeResidentLocked(key, &entry, std::move(data));
  EvictUntilWithinBudgetLocked();
}

StatusOr<std::shared_ptr<const void>> DatasetCache::Get(uint64_t dataset_id,
                                                        uint64_t partition) {
  if (!enabled()) return std::shared_ptr<const void>();
  Key key{dataset_id, partition};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    counters_->Add(Counter::kCacheMisses, 1);
    return std::shared_ptr<const void>();
  }
  Entry& entry = it->second;
  if (entry.resident) {
    // Pure hit: splice to the MRU end.
    lru_.splice(lru_.end(), lru_, entry.lru_it);
    ++stats_.hits;
    counters_->Add(Counter::kCacheHits, 1);
    return entry.data;
  }
  if (entry.reload == nullptr || !entry.on_disk) {
    // Defensive: a non-resident entry is only kept when it is reloadable.
    entries_.erase(it);
    ++stats_.misses;
    counters_->Add(Counter::kCacheMisses, 1);
    return std::shared_ptr<const void>();
  }
  // Spilled (or origin-backed): transparently reload through the retry
  // policy; the STPQ readers inside the reload fn hit the stpq/read
  // fault-injection site exactly like a selection load.
  ScopedSpan io(tracer(), span_category::kIo, "cache/reload");
  uint64_t read_bytes = 0;
  auto reloaded = options_.retry.Run(
      [&]() -> StatusOr<std::shared_ptr<const void>> {
        uint64_t attempt_bytes = 0;
        auto result = entry.reload(entry.disk_path, &attempt_bytes);
        if (result.ok()) read_bytes = attempt_bytes;
        return result;
      },
      counters_);
  if (!reloaded.ok()) return reloaded.status();
  io.AddArg("bytes", read_bytes);
  stats_.reload_bytes += read_bytes;
  ++stats_.hits;
  counters_->Add(Counter::kCacheHits, 1);
  counters_->Add(Counter::kCacheReloadBytes, read_bytes);
  // Re-admit the reloaded partition; an entry larger than the whole budget
  // is evicted again right away (its disk copy persists), but the caller
  // keeps the shared_ptr either way.
  MakeResidentLocked(key, &entry, *reloaded);
  EvictUntilWithinBudgetLocked();
  return std::move(reloaded).value();
}

void DatasetCache::DropDataset(uint64_t dataset_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.dataset_id != dataset_id) {
      ++it;
      continue;
    }
    Entry& entry = it->second;
    if (entry.resident) {
      lru_.erase(entry.lru_it);
      resident_bytes_ -= entry.bytes;
    }
    if (entry.owns_disk_file && entry.on_disk) {
      std::error_code ec;
      fs::remove(entry.disk_path, ec);
    }
    it = entries_.erase(it);
  }
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_entries = lru_.size();
  out.spilled_entries = entries_.size() - lru_.size();
  return out;
}

void DatasetCache::MakeResidentLocked(const Key& key, Entry* entry,
                                      std::shared_ptr<const void> data) {
  entry->data = std::move(data);
  entry->lru_it = lru_.insert(lru_.end(), key);
  entry->resident = true;
  resident_bytes_ += entry->bytes;
}

void DatasetCache::EvictUntilWithinBudgetLocked() {
  if (options_.budget_bytes == kUnbounded) return;
  // Entries whose spill failed rotate to the MRU end and stay resident;
  // once every remaining resident entry has failed, stop rather than spin.
  size_t failed_spills = 0;
  while (resident_bytes_ > options_.budget_bytes &&
         lru_.size() > failed_spills) {
    if (!EvictOneLocked()) ++failed_spills;
  }
}

bool DatasetCache::EvictOneLocked() {
  Key key = lru_.front();
  Entry& entry = entries_.at(key);
  if (!entry.on_disk && entry.spill != nullptr) {
    // First eviction of a spillable entry: write the STPQ copy.
    ScopedSpan io(tracer(), span_category::kIo, "cache/spill");
    std::string path = SpillPathLocked(key);
    uint64_t written = 0;
    Status status = options_.retry.Run(
        [&]() -> Status {
          uint64_t attempt_bytes = 0;
          Status write = entry.spill(entry.data.get(), path, &attempt_bytes);
          if (write.ok()) written = attempt_bytes;
          return write;
        },
        counters_);
    if (!status.ok()) {
      // Losing data to free memory is worse than running over budget: keep
      // the entry resident but rotate it to the MRU end so the next
      // eviction pass tries a different victim.
      if (!spill_failure_logged_) {
        spill_failure_logged_ = true;
        LogWarn("cache spill failed, keeping partition resident: " +
                status.ToString());
      }
      lru_.splice(lru_.end(), lru_, entry.lru_it);
      return false;
    }
    io.AddArg("bytes", written);
    entry.disk_path = std::move(path);
    entry.on_disk = true;
    entry.owns_disk_file = true;
    stats_.spill_bytes += written;
    counters_->Add(Counter::kCacheSpillBytes, written);
  }
  lru_.pop_front();
  resident_bytes_ -= entry.bytes;
  entry.resident = false;
  ++stats_.evictions;
  counters_->Add(Counter::kCacheEvictions, 1);
  if (entry.on_disk) {
    entry.data = nullptr;  // reloadable: drop the memory, keep the entry
  } else {
    entries_.erase(key);  // no disk copy and no spill fn: gone for good
  }
  return true;
}

std::string DatasetCache::SpillPathLocked(const Key& key) {
  if (!scratch_created_) {
    std::error_code ec;
    fs::create_directories(options_.scratch_dir, ec);
    scratch_created_ = true;
  }
  return options_.scratch_dir + "/ds" + std::to_string(key.dataset_id) +
         "_p" + std::to_string(key.partition) + ".stpq";
}

}  // namespace st4ml
