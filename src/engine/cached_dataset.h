#ifndef ST4ML_ENGINE_CACHED_DATASET_H_
#define ST4ML_ENGINE_CACHED_DATASET_H_

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/dataset.h"
#include "engine/dataset_cache.h"
#include "storage/stpq.h"

namespace st4ml {

namespace cache_internal {

/// Serialized STPQ size of one partition — header plus per-record bytes.
/// This is the unit the cache's byte budget is accounted in, and it matches
/// what a spill of the partition actually writes.
template <typename RecordT>
uint64_t StpqPartitionBytes(const std::vector<RecordT>& records) {
  uint64_t total = sizeof(kStpqMagic) + 1 + 8;  // magic | kind | count
  for (const RecordT& r : records) total += StpqRecordBytes(r);
  return total;
}

/// Type-erased spill: `data` is a std::vector<RecordT>*.
template <typename RecordT>
Status SpillPartition(const void* data, const std::string& path,
                      uint64_t* io_bytes) {
  const auto* records = static_cast<const std::vector<RecordT>*>(data);
  return WriteStpqFile(path, *records, io_bytes);
}

/// Type-erased reload: reads the partition back as a shared vector.
template <typename RecordT>
StatusOr<std::shared_ptr<const void>> ReloadPartition(const std::string& path,
                                                      uint64_t* io_bytes) {
  auto loaded = ReadStpqFile<RecordT>(path, io_bytes);
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<const void> out =
      std::make_shared<const std::vector<RecordT>>(std::move(*loaded));
  return out;
}

}  // namespace cache_internal

/// A handle to a Dataset whose partitions live in the context's
/// DatasetCache — the engine's `.persist()`: many consumers (repeated
/// selections, several extractors over one conversion result) share one
/// materialization, and partitions the budget cannot hold are spilled to
/// STPQ scratch files and transparently reloaded on the next Load.
///
/// `T` must be an STPQ record type (EventRecord or TrajRecord) — that is
/// what the spill format can serialize. When the context's cache is
/// disabled (budget 0), Persist degenerates to a pure pass-through: the
/// handle keeps the source Dataset and Load returns it unchanged, so
/// cached and uncached pipelines run the same code path shape either way.
///
/// Handles are cheap to copy (shared state). The cache entries live until
/// the cache evicts them or Unpersist is called; dropping every handle does
/// NOT drop the entries — like Spark, persistence outlives the reference
/// that created it, because the point is reuse by later, unrelated work.
template <typename T>
class CachedDataset {
  static_assert(std::is_same_v<T, EventRecord> ||
                    std::is_same_v<T, TrajRecord>,
                "CachedDataset spills through STPQ, which stores "
                "EventRecord or TrajRecord");

 public:
  CachedDataset() = default;

  /// Registers every partition of `ds` with the context's cache under a
  /// fresh dataset id. Partitions are copied into individually-owned
  /// blocks so the cache can evict them one at a time.
  static CachedDataset Persist(const Dataset<T>& ds) {
    CachedDataset out;
    out.ctx_ = ds.context();
    out.num_partitions_ = ds.num_partitions();
    DatasetCache& cache = out.ctx_->cache();
    out.id_ = cache.NewDatasetId();
    if (!cache.enabled()) {
      out.fallback_ = ds;  // budget 0: keep the plain Dataset
      return out;
    }
    for (size_t p = 0; p < ds.num_partitions(); ++p) {
      auto part = std::make_shared<const std::vector<T>>(ds.partition(p));
      uint64_t bytes = cache_internal::StpqPartitionBytes(*part);
      cache.Put(out.id_, p, part, bytes, &cache_internal::SpillPartition<T>,
                &cache_internal::ReloadPartition<T>);
    }
    return out;
  }

  const std::shared_ptr<ExecutionContext>& context() const { return ctx_; }
  size_t num_partitions() const { return num_partitions_; }
  uint64_t id() const { return id_; }

  /// One partition, served from memory or transparently reloaded from its
  /// spill file. Internal("cache lost partition") only when the entry was
  /// explicitly dropped (Unpersist raced a reader).
  StatusOr<std::shared_ptr<const std::vector<T>>> Partition(size_t p) const {
    if (fallback_.num_partitions() > 0) {
      return std::make_shared<const std::vector<T>>(fallback_.partition(p));
    }
    auto got = ctx_->cache().Get(id_, p);
    if (!got.ok()) return got.status();
    if (*got == nullptr) {
      return Status::Internal("cache lost partition " + std::to_string(p) +
                              " of dataset " + std::to_string(id_));
    }
    return std::static_pointer_cast<const std::vector<T>>(*got);
  }

  /// Rebuilds a plain Dataset from the cached partitions (hitting memory,
  /// or reloading spilled partitions through the retry policy).
  StatusOr<Dataset<T>> Load() const {
    if (fallback_.num_partitions() > 0 || num_partitions_ == 0) {
      return fallback_;
    }
    typename Dataset<T>::Partitions parts(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      auto part = Partition(p);
      if (!part.ok()) return part.status();
      parts[p] = **part;  // copy out; the cache keeps its shared copy
    }
    return Dataset<T>::FromPartitions(ctx_, std::move(parts));
  }

  /// Drops the cache entries and deletes their spill files. Subsequent
  /// Load/Partition calls fail; pass-through handles are unaffected.
  void Unpersist() {
    if (ctx_ != nullptr && fallback_.num_partitions() == 0) {
      ctx_->cache().DropDataset(id_);
    }
  }

 private:
  std::shared_ptr<ExecutionContext> ctx_;
  Dataset<T> fallback_;  // set only when the cache is disabled
  size_t num_partitions_ = 0;
  uint64_t id_ = 0;
};

template <typename T>
CachedDataset<T> Dataset<T>::Persist() const {
  return CachedDataset<T>::Persist(*this);
}

}  // namespace st4ml

#endif  // ST4ML_ENGINE_CACHED_DATASET_H_
