#ifndef ST4ML_ENGINE_EXECUTION_CONTEXT_H_
#define ST4ML_ENGINE_EXECUTION_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "observability/counters.h"
#include "observability/tracer.h"

namespace st4ml {

class ExecutionContext;

namespace internal {
/// The engine-internal mutable path to the context's counters. Library
/// operators (shuffles, broadcast, selection I/O) account through this;
/// applications, tests and benches read via ExecutionContext::
/// MetricsSnapshot() and reset via ResetMetrics() — there is deliberately
/// no public mutable accessor.
CounterRegistry& Counters(ExecutionContext& ctx);
}  // namespace internal

/// A process-local stand-in for a Spark context: owns the worker pool every
/// Dataset operation fans out on, the engine counters, and (optionally) the
/// tracer.
///
/// Dispatch is chunked, not queued: a RunParallel call publishes ONE job
/// (fn, count, chunk size) and workers claim index ranges off an atomic
/// counter. Thousands of one-partition tasks therefore cost a handful of
/// fetch_adds instead of thousands of mutex-protected queue operations, and
/// a worker that finishes its range immediately steals the next unclaimed
/// one — skewed partitions rebalance without any per-task allocation.
///
/// Observability: with a tracer attached (set_tracer), every RunParallel
/// call records an operation span and each claimed chunk a task span, both
/// parented under the driver's current span — so a Pipeline stage nests
/// stage → operation → task. With no tracer (the default) the only cost is
/// a null-pointer check per operation plus the chunk-claim counter, which
/// is bumped either way so traced and untraced runs snapshot identically.
class ExecutionContext : public std::enable_shared_from_this<ExecutionContext> {
 public:
  /// `Create()` sizes the pool to the hardware; `Create(n)` forces n workers.
  static std::shared_ptr<ExecutionContext> Create();
  static std::shared_ptr<ExecutionContext> Create(int num_workers);

  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  int num_workers() const { return num_workers_; }

  /// An atomic, thread-safe copy of every engine counter. This is the ONLY
  /// way to read metrics; mutation is engine-internal (internal::Counters).
  st4ml::MetricsSnapshot MetricsSnapshot() const {
    return counters_.Snapshot();
  }

  /// Zeroes every counter (benchmark harnesses between measured runs).
  void ResetMetrics() { counters_.Reset(); }

  /// Attaches (or, with nullptr, detaches) a tracer. The context keeps the
  /// tracer alive; instrumentation sites read the raw pointer.
  void set_tracer(std::shared_ptr<Tracer> tracer) {
    tracer_owned_ = std::move(tracer);
    tracer_.store(tracer_owned_.get(), std::memory_order_release);
  }
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Runs `fn(0) .. fn(count - 1)` across the pool and blocks until all
  /// finish. The calling thread participates in the claim loop, so even a
  /// one-worker pool overlaps nothing but loses nothing. `fn` must not
  /// itself call RunParallel on the same context. `name` labels the
  /// operation span when tracing is enabled.
  void RunParallel(size_t count, const std::function<void(size_t)>& fn) {
    RunParallel("parallel_for", count, fn);
  }
  void RunParallel(const char* name, size_t count,
                   const std::function<void(size_t)>& fn);

 private:
  /// One published parallel-for. Heap-allocated per RunParallel call and
  /// kept alive by the shared_ptr each participating thread copies, so a
  /// worker that wakes late for a finished job claims nothing and never
  /// touches a successor job's counters.
  struct ParallelJob {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t chunk = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    CounterRegistry* counters = nullptr;
    Tracer* tracer = nullptr;  // null when tracing is off
    uint64_t op_span = 0;      // parent for task spans
  };

  explicit ExecutionContext(int num_workers);

  void WorkerLoop();
  /// Claims chunks of `job` until none remain; returns indices processed.
  static size_t RunChunks(ParallelJob* job);

  friend CounterRegistry& internal::Counters(ExecutionContext& ctx);

  int num_workers_;
  CounterRegistry counters_;
  std::shared_ptr<Tracer> tracer_owned_;
  std::atomic<Tracer*> tracer_{nullptr};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<ParallelJob> job_;  // current job; published under mu_
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

namespace internal {
inline CounterRegistry& Counters(ExecutionContext& ctx) {
  return ctx.counters_;
}
}  // namespace internal

}  // namespace st4ml

#endif  // ST4ML_ENGINE_EXECUTION_CONTEXT_H_
