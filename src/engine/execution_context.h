#ifndef ST4ML_ENGINE_EXECUTION_CONTEXT_H_
#define ST4ML_ENGINE_EXECUTION_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace st4ml {

/// Counters the engine bumps on every shuffle and broadcast. The ablation
/// benchmarks read these to show the paper's Table-6 point: conversion by
/// broadcast R-tree moves (almost) no records, conversion by shuffle moves
/// all of them.
class EngineMetrics {
 public:
  void Reset() {
    shuffle_records_.store(0, std::memory_order_relaxed);
    shuffle_bytes_.store(0, std::memory_order_relaxed);
    broadcasts_.store(0, std::memory_order_relaxed);
  }

  void AddShuffle(uint64_t records, uint64_t bytes) {
    shuffle_records_.fetch_add(records, std::memory_order_relaxed);
    shuffle_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void AddBroadcast() { broadcasts_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t shuffle_records() const {
    return shuffle_records_.load(std::memory_order_relaxed);
  }
  uint64_t shuffle_bytes() const {
    return shuffle_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t broadcasts() const {
    return broadcasts_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> shuffle_records_{0};
  std::atomic<uint64_t> shuffle_bytes_{0};
  std::atomic<uint64_t> broadcasts_{0};
};

/// A process-local stand-in for a Spark context: owns the worker pool every
/// Dataset operation fans out on, and the engine metrics.
///
/// Dispatch is chunked, not queued: a RunParallel call publishes ONE job
/// (fn, count, chunk size) and workers claim index ranges off an atomic
/// counter. Thousands of one-partition tasks therefore cost a handful of
/// fetch_adds instead of thousands of mutex-protected queue operations, and
/// a worker that finishes its range immediately steals the next unclaimed
/// one — skewed partitions rebalance without any per-task allocation.
class ExecutionContext : public std::enable_shared_from_this<ExecutionContext> {
 public:
  /// `Create()` sizes the pool to the hardware; `Create(n)` forces n workers.
  static std::shared_ptr<ExecutionContext> Create();
  static std::shared_ptr<ExecutionContext> Create(int num_workers);

  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  int num_workers() const { return num_workers_; }
  EngineMetrics& metrics() { return metrics_; }

  /// Runs `fn(0) .. fn(count - 1)` across the pool and blocks until all
  /// finish. The calling thread participates in the claim loop, so even a
  /// one-worker pool overlaps nothing but loses nothing. `fn` must not
  /// itself call RunParallel on the same context.
  void RunParallel(size_t count, const std::function<void(size_t)>& fn);

 private:
  /// One published parallel-for. Heap-allocated per RunParallel call and
  /// kept alive by the shared_ptr each participating thread copies, so a
  /// worker that wakes late for a finished job claims nothing and never
  /// touches a successor job's counters.
  struct ParallelJob {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t chunk = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  explicit ExecutionContext(int num_workers);

  void WorkerLoop();
  /// Claims chunks of `job` until none remain; returns indices processed.
  static size_t RunChunks(ParallelJob* job);

  int num_workers_;
  EngineMetrics metrics_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<ParallelJob> job_;  // current job; published under mu_
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace st4ml

#endif  // ST4ML_ENGINE_EXECUTION_CONTEXT_H_
