#ifndef ST4ML_ENGINE_EXECUTION_CONTEXT_H_
#define ST4ML_ENGINE_EXECUTION_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/dataset_cache.h"
#include "engine/executor_backend.h"
#include "observability/counters.h"
#include "observability/tracer.h"

namespace st4ml {

class ExecutionContext;

namespace internal {
/// The engine-internal mutable path to the context's counters. Library
/// operators (shuffles, broadcast, selection I/O) account through this;
/// applications, tests and benches read via ExecutionContext::
/// MetricsSnapshot() and reset via ResetMetrics() — there is deliberately
/// no public mutable accessor.
CounterRegistry& Counters(ExecutionContext& ctx);
}  // namespace internal

/// A process-local stand-in for a Spark context: owns the worker pool every
/// Dataset operation fans out on, the engine counters, and (optionally) the
/// tracer.
///
/// Dispatch is chunked, not queued: a RunParallel call publishes ONE job
/// (fn, count, chunk size) and workers claim index ranges off an atomic
/// counter. Thousands of one-partition tasks therefore cost a handful of
/// fetch_adds instead of thousands of mutex-protected queue operations, and
/// a worker that finishes its range immediately steals the next unclaimed
/// one — skewed partitions rebalance without any per-task allocation.
///
/// Observability: with a tracer attached (set_tracer), every RunParallel
/// call records an operation span and each claimed chunk a task span, both
/// parented under the driver's current span — so a Pipeline stage nests
/// stage → operation → task. With no tracer (the default) the only cost is
/// a null-pointer check per operation plus the chunk-claim counter, which
/// is bumped either way so traced and untraced runs snapshot identically.
///
/// Fault tolerance (DESIGN.md §8): a task that returns a non-OK Status or
/// throws FAILS THE JOB, never the process. The first error is captured,
/// the job's remaining chunks are claimed-and-dropped so every participant
/// (including the blocked driver) always drains, and the error surfaces to
/// the caller — as the returned Status on the TryRunParallel path, or as
/// one exception rethrown on the DRIVER thread on the void RunParallel
/// path. Worker threads survive to run the next job; nothing unwinds
/// through WorkerLoop.
///
/// Concurrency (DESIGN.md §10): RunParallel may be called from SEVERAL
/// driver threads at once — one warm daemon context serves every in-flight
/// request. Each call publishes its job into an active list; idle workers
/// claim chunks from the first job that still has unclaimed indices, so
/// concurrent pipelines share the pool instead of the latest publisher
/// stealing it. Per-job attribution stays exact: each job captures the
/// publishing thread's job-scoped counter sink (ScopedJobCounters) and the
/// engine re-installs it on whichever thread runs that job's chunks.
class ExecutionContext : public std::enable_shared_from_this<ExecutionContext> {
 public:
  /// `Create()` sizes the pool to the hardware; `Create(n)` forces n
  /// workers. Both run on the `local` executor backend.
  static std::shared_ptr<ExecutionContext> Create();
  static std::shared_ptr<ExecutionContext> Create(int num_workers);

  /// Creates a context on the executor `spec` names (DESIGN.md §14): local
  /// specs behave exactly like Create(n); an mp spec pairs a multiprocess
  /// backend with a single-threaded driver pool, so forking a job's worker
  /// processes duplicates exactly one thread.
  static std::shared_ptr<ExecutionContext> Create(const ExecutorSpec& spec);

  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  int num_workers() const { return num_workers_; }

  /// An atomic, thread-safe copy of every engine counter. This is the ONLY
  /// way to read metrics; mutation is engine-internal (internal::Counters).
  st4ml::MetricsSnapshot MetricsSnapshot() const {
    return counters_.Snapshot();
  }

  /// Zeroes every counter (benchmark harnesses between measured runs).
  void ResetMetrics() { counters_.Reset(); }

  /// Attaches (or, with nullptr, detaches) a tracer. The context keeps the
  /// tracer alive; instrumentation sites read the raw pointer. Forwarded to
  /// the dataset cache so its spill/reload spans land in the same trace.
  void set_tracer(std::shared_ptr<Tracer> tracer);
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// The context's dataset cache (DESIGN.md §9). Created on first access
  /// with a budget from ST4ML_CACHE_BUDGET_BYTES (0 and unset mean
  /// disabled; negative means unbounded), so library layers can consult
  /// the cache unconditionally and pay nothing when it is off.
  DatasetCache& cache();

  /// Replaces the cache with one built from `options` — the programmatic
  /// spelling of the env knob (tools' --cache-budget, tests, benches).
  /// Call between pipelines: entries of the previous cache are dropped.
  void ConfigureCache(DatasetCache::Options options);

  /// Runs `fn(0) .. fn(count - 1)` across the pool and blocks until all
  /// finish. The calling thread participates in the claim loop, so even a
  /// one-worker pool overlaps nothing but loses nothing. `fn` must not
  /// itself call RunParallel on the same context. `name` labels the
  /// operation span when tracing is enabled.
  ///
  /// If any task throws, the job stops early and the FIRST exception is
  /// rethrown here, on the calling thread — the process never terminates
  /// and the pool never deadlocks on a failed job. Fallible tasks should
  /// prefer TryRunParallel, which carries the error as a Status instead.
  void RunParallel(size_t count, const std::function<void(size_t)>& fn) {
    RunParallel("parallel_for", count, fn);
  }
  void RunParallel(const char* name, size_t count,
                   const std::function<void(size_t)>& fn);

  /// The Status-returning task path: runs `fn(0) .. fn(count - 1)` like
  /// RunParallel, but tasks report failure by returning a non-OK Status
  /// (exceptions are caught and converted, StatusError keeping its code).
  /// The first failure stops further chunk claims and is returned;
  /// remaining indices are skipped. Never throws engine-side.
  Status TryRunParallel(size_t count,
                        const std::function<Status(size_t)>& fn) {
    return TryRunParallel("parallel_for", count, fn);
  }
  Status TryRunParallel(const char* name, size_t count,
                        const std::function<Status(size_t)>& fn) {
    return RunParallelImpl(name, count, fn, nullptr);
  }

  /// The context's executor backend (local thread pool by default).
  ExecutorBackend& executor() const { return *backend_; }

  /// True when serialized tasks run in other PROCESSES: operators must
  /// route work whose results they need through TryRunSerialized (or stay
  /// on TryRunParallel, which always runs in-process on the pool), and must
  /// not expect produce-side writes to driver memory to be visible.
  bool distributed() const { return backend_->distributed(); }

  /// The serialized task path (DESIGN.md §14): produce(i) yields bytes on
  /// the backend's executors, consume(i, bytes) integrates them on the
  /// driver, exactly once per index. On the local backend this is
  /// TryRunParallel plus an in-order consume pass; on the multiprocess
  /// backend produce runs in forked workers and the bytes cross sockets.
  /// `count == 0` is a no-op, like the parallel-for paths.
  Status TryRunSerialized(const char* name, size_t count,
                          const ExecutorBackend::ProduceFn& produce,
                          const ExecutorBackend::ConsumeFn& consume) {
    if (count == 0) return Status::Ok();
    return backend_->RunSerialized(*this, name, count, produce, consume);
  }

 private:
  /// One published parallel-for. Heap-allocated per RunParallel call and
  /// kept alive by the shared_ptr each participating thread copies, so a
  /// worker that wakes late for a finished job claims nothing and never
  /// touches a successor job's counters.
  struct ParallelJob {
    const std::function<Status(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t chunk = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    CounterRegistry* counters = nullptr;
    /// The publishing thread's job-scoped counter sink (may be null):
    /// re-installed on every thread that runs this job's chunks, so worker-
    /// side deltas land in the right Job even when several jobs share the
    /// pool.
    CounterRegistry* job_counters = nullptr;
    Tracer* tracer = nullptr;  // null when tracing is off
    uint64_t op_span = 0;      // parent for task spans

    /// Failure state. `failed` flips exactly once (first error wins, under
    /// error_mu); after that claims are dropped unrun but still accounted
    /// into `done`, so the driver's done_cv_ predicate always completes.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    Status error;
    std::exception_ptr exception;  // set when the failure was a throw
  };

  ExecutionContext(int num_workers, std::unique_ptr<ExecutorBackend> backend);

  /// Shared engine of both public paths. Returns the job's first error (OK
  /// when every index ran); when `exception_out` is non-null it receives
  /// the original exception_ptr of a throwing task, for rethrow.
  Status RunParallelImpl(const char* name, size_t count,
                         const std::function<Status(size_t)>& fn,
                         std::exception_ptr* exception_out);

  void WorkerLoop();
  /// Claims chunks of `job` until none remain; returns indices accounted
  /// (run, or dropped because the job already failed).
  static size_t RunChunks(ParallelJob* job);
  /// Runs one claimed chunk, converting throws to Status; on the first
  /// failure marks the job failed.
  static void RunChunkBody(ParallelJob* job, size_t start, size_t end);
  /// Records `status`/`exception` as the job's error iff it is the first.
  static void FailJob(ParallelJob* job, Status status,
                      std::exception_ptr exception);

  friend CounterRegistry& internal::Counters(ExecutionContext& ctx);

  int num_workers_;
  std::unique_ptr<ExecutorBackend> backend_;
  CounterRegistry counters_;
  std::shared_ptr<Tracer> tracer_owned_;
  std::atomic<Tracer*> tracer_{nullptr};

  // Declared after counters_ so the cache (which holds a CounterRegistry*)
  // is destroyed first. Guarded by its own mutex: worker tasks reach the
  // cache through ctx->cache() while a job is running.
  std::mutex cache_mu_;
  std::unique_ptr<DatasetCache> cache_;

  /// First active job with unclaimed chunks, or null. Caller holds mu_.
  std::shared_ptr<ParallelJob> FindClaimableLocked();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  /// Every published, not-yet-drained job, in publish order — concurrent
  /// driver threads each contribute one entry. Guarded by mu_.
  std::vector<std::shared_ptr<ParallelJob>> active_jobs_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

namespace internal {
inline CounterRegistry& Counters(ExecutionContext& ctx) {
  return ctx.counters_;
}
}  // namespace internal

}  // namespace st4ml

#endif  // ST4ML_ENGINE_EXECUTION_CONTEXT_H_
