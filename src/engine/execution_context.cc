#include "engine/execution_context.h"

#include <algorithm>

namespace st4ml {

std::shared_ptr<ExecutionContext> ExecutionContext::Create() {
  unsigned hw = std::thread::hardware_concurrency();
  return Create(hw == 0 ? 1 : static_cast<int>(hw));
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(int num_workers) {
  return std::shared_ptr<ExecutionContext>(
      new ExecutionContext(std::max(1, num_workers)));
}

ExecutionContext::ExecutionContext(int num_workers)
    : num_workers_(num_workers) {
  workers_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionContext::~ExecutionContext() {
  // RunParallel blocks its caller until the job drains, so no job can still
  // be in flight when the owner destroys the context.
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ExecutionContext::RunChunks(ParallelJob* job) {
  size_t processed = 0;
  for (;;) {
    size_t start = job->next.fetch_add(job->chunk, std::memory_order_relaxed);
    if (start >= job->count) break;
    size_t end = std::min(start + job->chunk, job->count);
    job->counters->Add(Counter::kChunkClaims, 1);
    if (job->tracer != nullptr) {
      ScopedSpan task(job->tracer, span_category::kTask, "chunk",
                      job->op_span);
      task.AddArg("first_index", start);
      task.AddArg("num_indices", end - start);
      for (size_t i = start; i < end; ++i) (*job->fn)(i);
    } else {
      for (size_t i = start; i < end; ++i) (*job->fn)(i);
    }
    processed += end - start;
  }
  return processed;
}

void ExecutionContext::WorkerLoop() {
  std::shared_ptr<ParallelJob> last;
  for (;;) {
    std::shared_ptr<ParallelJob> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_ != last; });
      if (shutdown_) return;
      job = job_;
      last = job;
    }
    size_t processed = RunChunks(job.get());
    if (processed > 0 &&
        job->done.fetch_add(processed, std::memory_order_acq_rel) +
                processed ==
            job->count) {
      // Notify under the lock so the driver can't check the predicate and
      // sleep between our fetch_add and the notify.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ExecutionContext::RunParallel(const char* name, size_t count,
                                   const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  counters_.Add(Counter::kParallelJobs, 1);
  Tracer* tracer = this->tracer();
  ScopedSpan op(tracer, span_category::kOperation, name);
  if (count == 1 || num_workers_ == 1) {
    // Run inline: no handoff latency, and safe under re-entrancy. Counted
    // as one claimed chunk so traced/untraced and pooled/inline runs agree
    // on what a "claim" is per job shape.
    counters_.Add(Counter::kChunkClaims, 1);
    if (tracer != nullptr) {
      ScopedSpan task(tracer, span_category::kTask, "chunk", op.id());
      task.AddArg("first_index", 0);
      task.AddArg("num_indices", count);
      for (size_t i = 0; i < count; ++i) fn(i);
    } else {
      for (size_t i = 0; i < count; ++i) fn(i);
    }
    return;
  }
  auto job = std::make_shared<ParallelJob>();
  job->fn = &fn;
  job->count = count;
  // ~8 chunks per worker: coarse enough that tiny partitions amortize the
  // claim fetch_add, fine enough that skewed ones still rebalance.
  job->chunk =
      std::max<size_t>(1, count / (static_cast<size_t>(num_workers_) * 8));
  job->counters = &counters_;
  job->tracer = tracer;
  job->op_span = op.id();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
  }
  work_cv_.notify_all();

  // The driver claims chunks too instead of idling.
  size_t processed = RunChunks(job.get());
  if (processed > 0) {
    job->done.fetch_add(processed, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->count;
  });
}

}  // namespace st4ml
