#include "engine/execution_context.h"

#include <algorithm>

namespace st4ml {

std::shared_ptr<ExecutionContext> ExecutionContext::Create() {
  unsigned hw = std::thread::hardware_concurrency();
  return Create(hw == 0 ? 1 : static_cast<int>(hw));
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(int num_workers) {
  return std::shared_ptr<ExecutionContext>(
      new ExecutionContext(std::max(1, num_workers)));
}

ExecutionContext::ExecutionContext(int num_workers)
    : num_workers_(num_workers) {
  workers_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionContext::~ExecutionContext() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ExecutionContext::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ExecutionContext::RunParallel(size_t count,
                                   const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || num_workers_ == 1) {
    // Run inline: no handoff latency, and safe under re-entrancy.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += count;
    for (size_t i = 0; i < count; ++i) {
      tasks_.push([&fn, i] { fn(i); });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace st4ml
