#include "engine/execution_context.h"

#include <algorithm>

#include "common/env.h"
#include "common/fault_injector.h"
#include "engine/mp/mp_backend.h"

namespace st4ml {

std::shared_ptr<ExecutionContext> ExecutionContext::Create() {
  unsigned hw = std::thread::hardware_concurrency();
  return Create(hw == 0 ? 1 : static_cast<int>(hw));
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(int num_workers) {
  return std::shared_ptr<ExecutionContext>(new ExecutionContext(
      std::max(1, num_workers), MakeLocalExecutorBackend()));
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(
    const ExecutorSpec& spec) {
  if (spec.kind == ExecutorSpec::Kind::kLocal) {
    return spec.workers == 0 ? Create() : Create(spec.workers);
  }
  // Multiprocess: the DRIVER pool is one thread (the caller), because
  // RunSerialized forks and fork duplicates only the calling thread — any
  // pool thread would be silently absent in every worker. Parallelism
  // comes from the worker processes instead.
  MpOptions mp = spec.mp;
  mp.num_workers = std::max(1, spec.workers);
  return std::shared_ptr<ExecutionContext>(new ExecutionContext(
      1, mp::MakeMultiProcessExecutorBackend(std::move(mp))));
}

ExecutionContext::ExecutionContext(int num_workers,
                                   std::unique_ptr<ExecutorBackend> backend)
    : num_workers_(num_workers), backend_(std::move(backend)) {
  // A one-worker pool never uses pool threads (RunParallelImpl runs count
  // == 1 jobs inline and a one-worker claim loop IS the caller), so spawn
  // none: the context stays genuinely single-threaded, which is what lets
  // the multiprocess backend fork safely mid-session.
  if (num_workers_ == 1) return;
  workers_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionContext::~ExecutionContext() {
  // RunParallel blocks its caller until the job drains (even a failed job
  // drains — skipped chunks are accounted into done), so no job can still
  // be in flight when the owner destroys the context.
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ExecutionContext::set_tracer(std::shared_ptr<Tracer> tracer) {
  tracer_owned_ = std::move(tracer);
  tracer_.store(tracer_owned_.get(), std::memory_order_release);
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_ != nullptr) cache_->set_tracer(tracer_owned_.get());
}

DatasetCache& ExecutionContext::cache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_ == nullptr) {
    DatasetCache::Options options;
    int64_t budget = GetEnvInt("ST4ML_CACHE_BUDGET_BYTES", 0);
    options.budget_bytes = budget < 0 ? DatasetCache::kUnbounded
                                      : static_cast<uint64_t>(budget);
    cache_ = std::make_unique<DatasetCache>(std::move(options), &counters_);
    cache_->set_tracer(tracer());
  }
  return *cache_;
}

void ExecutionContext::ConfigureCache(DatasetCache::Options options) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_ = std::make_unique<DatasetCache>(std::move(options), &counters_);
  cache_->set_tracer(tracer());
}

void ExecutionContext::FailJob(ParallelJob* job, Status status,
                               std::exception_ptr exception) {
  job->counters->Add(Counter::kTasksFailed, 1);
  std::lock_guard<std::mutex> lock(job->error_mu);
  if (job->failed.load(std::memory_order_relaxed)) return;
  job->error = std::move(status);
  job->exception = std::move(exception);
  job->failed.store(true, std::memory_order_release);
}

void ExecutionContext::RunChunkBody(ParallelJob* job, size_t start,
                                    size_t end) {
  for (size_t i = start; i < end; ++i) {
    // Another task failed while this chunk was running: stop early. The
    // whole chunk was already accounted by the caller.
    if (job->failed.load(std::memory_order_acquire)) return;
    Status status;
    std::exception_ptr exception;
    try {
      status = (*job->fn)(i);
    } catch (const StatusError& e) {
      status = e.status();
      exception = std::current_exception();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("task threw: ") + e.what());
      exception = std::current_exception();
    } catch (...) {
      status = Status::Internal("task threw a non-std exception");
      exception = std::current_exception();
    }
    if (!status.ok()) {
      FailJob(job, std::move(status), std::move(exception));
      return;
    }
  }
}

size_t ExecutionContext::RunChunks(ParallelJob* job) {
  // Attribute everything this thread does for the job — chunk claims, task
  // failures, counters bumped inside the task fn (cache hits, retries) — to
  // the job's own registry. On the driver this re-installs the sink that is
  // already current; on a worker it scopes the publisher's sink to exactly
  // this job's chunks.
  ScopedJobCounters job_scope(job->job_counters);
  size_t processed = 0;
  for (;;) {
    size_t start = job->next.fetch_add(job->chunk, std::memory_order_relaxed);
    if (start >= job->count) break;
    size_t end = std::min(start + job->chunk, job->count);
    job->counters->Add(Counter::kChunkClaims, 1);
    if (job->failed.load(std::memory_order_acquire)) {
      // Claim-and-drop: the job already failed, so the chunk is not run but
      // IS accounted, keeping done == count reachable for the driver.
      processed += end - start;
      continue;
    }
    Status injected =
        GlobalFaultInjector().MaybeFail(fault_site::kTaskRun);
    if (!injected.ok()) {
      job->counters->Add(Counter::kFaultsInjected, 1);
      FailJob(job, std::move(injected), nullptr);
      processed += end - start;
      continue;
    }
    if (job->tracer != nullptr) {
      ScopedSpan task(job->tracer, span_category::kTask, "chunk",
                      job->op_span);
      task.AddArg("first_index", start);
      task.AddArg("num_indices", end - start);
      RunChunkBody(job, start, end);
    } else {
      RunChunkBody(job, start, end);
    }
    processed += end - start;
  }
  return processed;
}

std::shared_ptr<ExecutionContext::ParallelJob>
ExecutionContext::FindClaimableLocked() {
  for (const std::shared_ptr<ParallelJob>& job : active_jobs_) {
    if (job->next.load(std::memory_order_relaxed) < job->count) return job;
  }
  return nullptr;
}

void ExecutionContext::WorkerLoop() {
  for (;;) {
    std::shared_ptr<ParallelJob> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        if (shutdown_) return true;
        job = FindClaimableLocked();
        return job != nullptr;
      });
      // Shutdown requires every driver to have drained first (RunParallel
      // blocks its caller), so a null job here can only mean "exit".
      if (job == nullptr) return;
    }
    size_t processed = RunChunks(job.get());
    if (processed > 0 &&
        job->done.fetch_add(processed, std::memory_order_acq_rel) +
                processed ==
            job->count) {
      // Notify under the lock so the driver can't check the predicate and
      // sleep between our fetch_add and the notify.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

Status ExecutionContext::RunParallelImpl(
    const char* name, size_t count, const std::function<Status(size_t)>& fn,
    std::exception_ptr* exception_out) {
  if (count == 0) return Status::Ok();
  counters_.Add(Counter::kParallelJobs, 1);
  Tracer* tracer = this->tracer();
  ScopedSpan op(tracer, span_category::kOperation, name);
  auto job = std::make_shared<ParallelJob>();
  job->fn = &fn;
  job->count = count;
  job->counters = &counters_;
  job->job_counters = internal::tls_job_counters;
  job->tracer = tracer;
  job->op_span = op.id();
  if (count == 1 || num_workers_ == 1) {
    // Run inline: no handoff latency, and safe under re-entrancy. The
    // whole range is one chunk, so this counts as one claimed chunk —
    // traced/untraced and pooled/inline runs agree on what a "claim" is
    // per job shape.
    job->chunk = count;
    RunChunks(job.get());
  } else {
    // ~8 chunks per worker: coarse enough that tiny partitions amortize
    // the claim fetch_add, fine enough that skewed ones still rebalance.
    job->chunk =
        std::max<size_t>(1, count / (static_cast<size_t>(num_workers_) * 8));
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_jobs_.push_back(job);
    }
    work_cv_.notify_all();

    // The driver claims chunks too instead of idling.
    size_t processed = RunChunks(job.get());
    if (processed > 0) {
      job->done.fetch_add(processed, std::memory_order_acq_rel);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
    // Retire the drained job. A worker that still holds a shared_ptr to it
    // claims nothing (next >= count) and never touches fn again.
    active_jobs_.erase(
        std::find(active_jobs_.begin(), active_jobs_.end(), job));
  }
  if (!job->failed.load(std::memory_order_acquire)) return Status::Ok();
  op.AddArg("failed", 1);
  // done == count implies no task can still be inside FailJob's critical
  // section for THIS error (it was set before failed flipped), but take the
  // lock anyway: a straggler losing the first-error race may still be
  // writing nothing — the mutex makes the read unconditionally clean.
  std::lock_guard<std::mutex> lock(job->error_mu);
  if (exception_out != nullptr) *exception_out = job->exception;
  return job->error;
}

void ExecutionContext::RunParallel(const char* name, size_t count,
                                   const std::function<void(size_t)>& fn) {
  std::function<Status(size_t)> wrapped = [&fn](size_t i) {
    fn(i);
    return Status::Ok();
  };
  std::exception_ptr exception;
  Status status = RunParallelImpl(name, count, wrapped, &exception);
  if (status.ok()) return;
  // Surface the worker's failure on the driver: the original exception when
  // there was one, its Status form otherwise (e.g. an injected task fault).
  if (exception != nullptr) std::rethrow_exception(exception);
  throw StatusError(std::move(status));
}

}  // namespace st4ml
