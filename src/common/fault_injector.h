#ifndef ST4ML_COMMON_FAULT_INJECTOR_H_
#define ST4ML_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"

namespace st4ml {

/// Instrumented failure points. Each site is one MaybeFail call in library
/// code; tests and the env knobs arm them by name.
namespace fault_site {
/// Checked once per claimed chunk in ExecutionContext::RunChunks — a fired
/// fault fails the running job exactly like a task that returned an error.
inline constexpr const char* kTaskRun = "engine/task";
/// Checked on entry to ReadStpqEvents / ReadStpqTrajs — a fired fault is a
/// transient IOError, which is what RetryPolicy retries.
inline constexpr const char* kStpqRead = "stpq/read";
/// Checked on entry to the STPQ writers (PersistDataset / BuildOnDiskIndex
/// go through them).
inline constexpr const char* kStpqWrite = "stpq/write";
/// Checked before a WAL frame write — a fired fault means the record was
/// NEVER acked and must not appear after replay.
inline constexpr const char* kWalAppend = "wal/append";
/// Checked at the start of a segment seal (fsync + rename): a fired fault
/// leaves the segment `.open`, still replayable.
inline constexpr const char* kWalSeal = "wal/seal";
/// Checked at the start of a compaction cycle: a fired fault leaves every
/// sealed segment in place for the next cycle to retry.
inline constexpr const char* kIngestCompact = "ingest/compact";
/// Checked by a multiprocess-executor WORKER on each task grant it
/// receives — a fired fault raises SIGKILL on the worker process (the
/// driver sees EOF and reclaims the grant, DESIGN.md §14). Note the armed
/// state is inherited across fork: a scripted FailNext arms EVERY worker
/// of the next job; the deterministic per-slot scripts live in MpOptions.
inline constexpr const char* kMpWorkerKill = "mp/worker_kill";
}  // namespace fault_site

/// Deterministic fault injection for robustness tests and chaos runs
/// (DESIGN.md §8). OFF by default: the unarmed fast path is a single
/// relaxed atomic load, so production call sites pay nothing measurable.
///
/// Two arming modes, per site:
///  - scripted: FailNext(site, n) fails the next n MaybeFail calls at that
///    site — the tool for "exactly one transient failure, then recover"
///    tests;
///  - seeded-probabilistic: ArmProbabilistic(site, p, seed) fails each call
///    with probability p drawn from a splitmix64 stream, so a given seed
///    reproduces the same failure pattern run-to-run.
///
/// Thread-safe: MaybeFail is called from worker threads (task-run and STPQ
/// read/write boundaries); armed-path state is guarded by one mutex, which
/// is fine because injection is a test-only regime.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Returns IOError("injected fault ...") when a fault fires at `site`,
  /// OK otherwise. `detail` (a path, a task name) is appended to the error.
  Status MaybeFail(const char* site, const std::string& detail = "");

  /// Scripted mode: the next `times` MaybeFail calls at `site` fail.
  void FailNext(const std::string& site, int times);

  /// Probabilistic mode: each MaybeFail at `site` fails with probability
  /// `probability`, deterministically derived from `seed`.
  void ArmProbabilistic(const std::string& site, double probability,
                        uint64_t seed);

  /// Disarms every site and zeroes the injected count.
  void Reset();

  /// How many faults have fired since construction or the last Reset.
  uint64_t injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    int fail_next = 0;
    double probability = 0.0;
    Rng rng{0};
  };

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// The process-wide injector every library hook consults. Starts disarmed;
/// the first call arms it from the env knobs when ST4ML_FAULT_PROB > 0
/// (site ST4ML_FAULT_SITE, default stpq/read; stream ST4ML_FAULT_SEED,
/// default 42) so tools can be chaos-tested without a recompile.
FaultInjector& GlobalFaultInjector();

}  // namespace st4ml

#endif  // ST4ML_COMMON_FAULT_INJECTOR_H_
