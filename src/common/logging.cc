#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace st4ml {
namespace internal {

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

void LogInfo(const std::string& message) {
  std::fprintf(stderr, "[st4ml] %s\n", message.c_str());
}

void LogWarn(const std::string& message) {
  std::fprintf(stderr, "[st4ml:warn] %s\n", message.c_str());
}

}  // namespace st4ml
