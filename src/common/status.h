#ifndef ST4ML_COMMON_STATUS_H_
#define ST4ML_COMMON_STATUS_H_

#include <exception>
#include <string>
#include <utility>

namespace st4ml {

/// Error handling across every public API boundary (RocksDB idiom, DESIGN.md
/// §5): fallible functions return `Status` or `StatusOr<T>`; exceptions never
/// cross module boundaries.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kIOError = 3,
    kInvalidArgument = 4,
    kInternal = 5,
    kResourceExhausted = 6,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// The exception form of a Status, for the value-returning legacy APIs
/// (Dataset transforms, ReduceByKey, ...) whose signatures cannot carry a
/// Status. The engine converts a worker-task failure into exactly one
/// StatusError thrown on the DRIVER thread — user exceptions never unwind a
/// worker, and the Status-returning Try* paths never throw at all.
class StatusError : public std::exception {
 public:
  explicit StatusError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

/// Either a value or the error that prevented producing one.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error Status
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit from value
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  T&& operator*() && { return std::move(value_); }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define ST4ML_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::st4ml::Status st4ml_status_ = (expr);        \
    if (!st4ml_status_.ok()) return st4ml_status_; \
  } while (0)

}  // namespace st4ml

#endif  // ST4ML_COMMON_STATUS_H_
