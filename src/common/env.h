#ifndef ST4ML_COMMON_ENV_H_
#define ST4ML_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace st4ml {

/// Environment-variable configuration knobs (EXPERIMENTS.md "reproducibility
/// knobs"). Missing or unparsable values fall back to the default.
std::string GetEnvString(const char* name, const std::string& default_value);
int64_t GetEnvInt(const char* name, int64_t default_value);
double GetEnvDouble(const char* name, double default_value);

/// ST4ML_SCALE: dataset size multiplier for benches and staged data
/// (default 1.0, tuned for a small container).
double BenchScale();

}  // namespace st4ml

#endif  // ST4ML_COMMON_ENV_H_
