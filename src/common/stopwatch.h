#ifndef ST4ML_COMMON_STOPWATCH_H_
#define ST4ML_COMMON_STOPWATCH_H_

#include <chrono>

namespace st4ml {

/// Wall-clock stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace st4ml

#endif  // ST4ML_COMMON_STOPWATCH_H_
