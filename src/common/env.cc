#include "common/env.h"

#include <cstdlib>

namespace st4ml {

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' ? value : default_value;
}

int64_t GetEnvInt(const char* name, int64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return default_value;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  return end != value ? static_cast<int64_t>(parsed) : default_value;
}

double GetEnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return default_value;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return end != value ? parsed : default_value;
}

double BenchScale() { return GetEnvDouble("ST4ML_SCALE", 1.0); }

}  // namespace st4ml
