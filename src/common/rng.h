#ifndef ST4ML_COMMON_RNG_H_
#define ST4ML_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace st4ml {

/// Deterministic splitmix64-based RNG. Every generator, sampler and bench in
/// the repo draws randomness through a seeded Rng so results are reproducible
/// run-to-run and independent of the standard library's distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = Uniform(1e-12, 1.0);
    double u2 = Uniform(0.0, 1.0);
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform(0.0, 1.0) < p; }

 private:
  uint64_t state_;
};

}  // namespace st4ml

#endif  // ST4ML_COMMON_RNG_H_
