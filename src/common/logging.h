#ifndef ST4ML_COMMON_LOGGING_H_
#define ST4ML_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace st4ml {
namespace internal {

/// Accumulates the streamed message for a failed ST4ML_CHECK and aborts the
/// process when the full expression finishes (so every `<<` has run).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  ~CheckFailure();  // prints and aborts

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-`<<` sink so the macro can be used as a statement.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Aborts with a message when `cond` is false. Streamable:
///   ST4ML_CHECK(s.ok()) << "load failed: " << s.ToString();
#define ST4ML_CHECK(cond)           \
  (cond) ? (void)0                  \
         : ::st4ml::internal::Voidify() &                                   \
               ::st4ml::internal::CheckFailure(__FILE__, __LINE__, #cond)   \
                   .stream()

/// Minimal leveled logging to stderr (ST4ML_LOG_LEVEL gates verbosity).
void LogInfo(const std::string& message);
void LogWarn(const std::string& message);

}  // namespace st4ml

#endif  // ST4ML_COMMON_LOGGING_H_
