#include "common/fault_injector.h"

#include "common/env.h"

namespace st4ml {

Status FaultInjector::MaybeFail(const char* site, const std::string& detail) {
  if (!armed_.load(std::memory_order_acquire)) return Status::Ok();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::Ok();
    SiteState& state = it->second;
    if (state.fail_next > 0) {
      --state.fail_next;
      fire = true;
    } else if (state.probability > 0.0 &&
               state.rng.Uniform(0.0, 1.0) < state.probability) {
      fire = true;
    }
  }
  if (!fire) return Status::Ok();
  injected_.fetch_add(1, std::memory_order_relaxed);
  std::string msg = "injected fault at " + std::string(site);
  if (!detail.empty()) msg += ": " + detail;
  return Status::IOError(std::move(msg));
}

void FaultInjector::FailNext(const std::string& site, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site].fail_next = times;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmProbabilistic(const std::string& site,
                                     double probability, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.probability = probability;
  state.rng = Rng(seed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_.store(false, std::memory_order_release);
  injected_.store(0, std::memory_order_relaxed);
}

FaultInjector& GlobalFaultInjector() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    double probability = GetEnvDouble("ST4ML_FAULT_PROB", 0.0);
    if (probability > 0.0) {
      created->ArmProbabilistic(
          GetEnvString("ST4ML_FAULT_SITE", fault_site::kStpqRead), probability,
          static_cast<uint64_t>(GetEnvInt("ST4ML_FAULT_SEED", 42)));
    }
    return created;
  }();
  return *injector;
}

}  // namespace st4ml
