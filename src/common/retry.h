#ifndef ST4ML_COMMON_RETRY_H_
#define ST4ML_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"
#include "observability/counters.h"

namespace st4ml {

namespace retry_internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const StatusOr<T>& result) {
  return result.status();
}
}  // namespace retry_internal

/// Bounded retry with exponential backoff, wrapped around the I/O
/// boundaries (Selector file loads, on-disk index writes). Only transient
/// codes are retried — an IOError may be a full disk buffer or an injected
/// fault that clears on the next attempt, while NotFound and Corruption are
/// deterministic and retrying them only wastes the backoff.
///
/// `{1, ...}` (RetryPolicy::None()) degenerates to a plain call, which is
/// why the policy can sit unconditionally in the I/O paths.
struct RetryPolicy {
  /// Total attempts, including the first one; values < 1 behave as 1.
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;

  static RetryPolicy None() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }

  bool Retryable(const Status& status) const {
    return status.code() == Status::Code::kIOError;
  }

  /// Calls `fn` (returning Status or StatusOr<T>) up to max_attempts times
  /// and returns the last result. Each re-attempt bumps kTasksRetried on
  /// `counters` (when given) — the metrics-snapshot evidence that a run
  /// survived transient failures; `attempts_out` (when given) receives the
  /// number of calls made, for span annotations.
  template <typename Fn>
  auto Run(Fn&& fn, CounterRegistry* counters = nullptr,
           uint64_t* attempts_out = nullptr) const {
    const int attempts = std::max(1, max_attempts);
    std::chrono::milliseconds backoff = initial_backoff;
    for (int attempt = 1;; ++attempt) {
      auto result = fn();
      const Status& status = retry_internal::StatusOf(result);
      if (attempts_out != nullptr) *attempts_out = attempt;
      if (status.ok() || attempt >= attempts || !Retryable(status)) {
        return result;
      }
      if (counters != nullptr) counters->Add(Counter::kTasksRetried, 1);
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff = std::chrono::milliseconds(static_cast<int64_t>(
          static_cast<double>(backoff.count()) * backoff_multiplier));
    }
  }
};

}  // namespace st4ml

#endif  // ST4ML_COMMON_RETRY_H_
