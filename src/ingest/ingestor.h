#ifndef ST4ML_INGEST_INGESTOR_H_
#define ST4ML_INGEST_INGESTOR_H_

// Crash-safe streaming ingestion (DESIGN.md §13): appended records land in
// time-bucketed WAL segments (src/ingest/wal.h) under `<dir>/wal/`, and a
// background compactor rolls sealed segments into indexed
// `ingest-g<gen>-b<bucket>.stpq` (+`.stix`) partitions published atomically.
// The single commit point is `<dir>/ingest.manifest`
// (src/storage/ingest_manifest.h): readers obtain the partition list and the
// consumed-segment skip set from one atomically-replaced file, so a Select
// issued mid-stream sees every acked record exactly once.
//
// Crash semantics:
//  - Append returning Ok is the ack; the destructor does NOT seal or flush,
//    so dropping an Ingestor mid-stream leaves exactly what a SIGKILL
//    would — Open() replays it.
//  - A crash before a manifest publish leaves orphan `ingest-*` partitions
//    (deleted at the next Open) and the segments they absorbed (replayed):
//    no record is lost or duplicated.
//  - A crash after the publish but before segment deletion leaves
//    consumed-but-present segments, which Open() deletes instead of
//    replaying.
//  - Consumed segment FILES are deleted one compaction cycle late
//    (`pending_delete_`), a grace window for cross-process readers that
//    listed them just before the commit.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/execution_context.h"
#include "ingest/wal.h"
#include "storage/ingest_manifest.h"

namespace st4ml {

struct IngestorOptions {
  /// Width of one time bucket; appends are routed to the bucket of their
  /// record's timestamp so compacted partitions stay time-partitioned.
  int64_t bucket_seconds = 3600;
  /// A bucket's active segment is sealed once it holds this many records.
  uint64_t seal_records = 4096;
  /// Background compactor cadence.
  int64_t compact_interval_ms = 200;
  /// Hard cap on concurrently open bucket writers (one fd each). Opening a
  /// writer past the cap first seals the OLDEST open bucket — under roughly
  /// time-ordered arrival that is the bucket least likely to see more
  /// appends, and a wide scattered stream cannot exhaust fds.
  size_t max_open_buckets = 64;
  /// Start the background compactor thread at Open. Tests that script
  /// compaction call CompactNow() themselves and pass false.
  bool start_compactor = true;
};

struct IngestorStats {
  uint64_t appended = 0;    ///< records acked by this process
  uint64_t replayed = 0;    ///< records recovered from WAL at Open
  uint64_t staged = 0;      ///< records currently in WAL segments
  uint64_t compacted = 0;   ///< records in published partitions
  uint64_t compactions = 0; ///< manifest publishes by this process
  uint64_t wal_segments = 0;
  uint64_t generation = 0;  ///< current manifest generation
};

/// What a consistent merged read serves: the published partitions plus the
/// staged WAL tail, taken from the in-memory manifest under snapshot_mu().
struct IngestSnapshot {
  std::vector<StpqPartMeta> parts;     // files relative to dir()
  std::vector<std::string> wal_paths;  // absolute segment paths
  uint64_t generation = 0;
};

class Ingestor {
 public:
  /// Opens (creating if needed) an ingest directory, runs crash recovery
  /// (orphan cleanup + WAL replay), and starts the compactor thread when
  /// options ask for it. `ctx` is optional and only feeds the engine
  /// counters (kWalReplayedRecords, kCompactionsRun).
  static StatusOr<std::unique_ptr<Ingestor>> Open(
      const std::string& dir, const IngestorOptions& options = {},
      ExecutionContext* ctx = nullptr);

  /// NOT a graceful shutdown: stops the compactor thread and drops active
  /// writers WITHOUT sealing — on-disk state is exactly what a crash leaves.
  /// Call Flush() first for a clean handoff.
  ~Ingestor();

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Appends one record to its time bucket's active segment. Returning Ok
  /// IS the ack (see wal.h for the durability ladder).
  Status Append(const EventRecord& r);

  /// Batched append: one write(2) per touched bucket. All-or-nothing: an
  /// error means NO record of the batch was staged or acked (frames written
  /// to earlier buckets are rolled back), so a client may retry the whole
  /// batch without duplicating records.
  Status AppendBatch(const std::vector<EventRecord>& records);

  /// Graceful drain: seals every active segment, then compacts everything
  /// staged into published partitions.
  Status Flush();

  /// One synchronous compaction cycle (also what the background thread
  /// runs). A no-op returning Ok when nothing is sealed.
  Status CompactNow();

  IngestorStats Stats() const;

  /// Consistent merged view for an in-process read. Hold snapshot_mu()
  /// SHARED across the whole read to keep the compactor from deleting a
  /// listed segment underneath it.
  IngestSnapshot Snapshot() const;
  std::shared_mutex& snapshot_mu() const { return snapshot_mu_; }

  const std::string& dir() const { return dir_; }
  const std::string& wal_dir() const { return wal_dir_; }

 private:
  Ingestor(std::string dir, const IngestorOptions& options,
           ExecutionContext* ctx);

  Status Recover();
  void CompactorLoop();
  /// Seals `bucket`'s writer and moves its segment to the sealed list. On
  /// failure the writer stays active for a later retry when possible; a
  /// writer whose descriptor is already closed is parked as an `.open`
  /// segment the compactor reads tolerantly.
  void SealLocked(int64_t bucket);
  /// Seals oldest open buckets until a new writer fits under
  /// `max_open_buckets` (fd budget). Buckets in `protect` are never sealed:
  /// a mid-batch seal would make an earlier bucket's frames irrevocable and
  /// break AppendBatch's rollback, so a batch spanning more buckets than
  /// the cap may briefly exceed the fd budget by its own bucket count.
  void ReserveWriterSlotLocked(const std::set<int64_t>* protect = nullptr);
  std::string SegmentPath(uint64_t seq, int64_t bucket) const;

  const std::string dir_;
  const std::string wal_dir_;
  const IngestorOptions options_;
  ExecutionContext* const ctx_;

  /// Guards the write side: active writers, sealed segment list, sequence.
  mutable std::mutex mu_;
  std::map<int64_t, WalWriter> writers_;  // bucket -> active segment
  std::vector<std::string> sealed_;       // segment paths awaiting compaction
  uint64_t next_seq_ = 0;
  uint64_t staged_records_ = 0;

  /// Readers share, the compactor takes it exclusively for the
  /// commit swap + deferred deletions.
  mutable std::shared_mutex snapshot_mu_;
  IngestManifest manifest_;
  std::vector<std::string> pending_delete_;  // consumed paths, deleted next cycle
  uint64_t compacted_records_ = 0;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> replayed_{0};
  std::atomic<uint64_t> compactions_{0};

  /// Serializes compaction cycles (background thread vs explicit
  /// CompactNow/Flush callers).
  std::mutex compact_mu_;

  std::thread compactor_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

}  // namespace st4ml

#endif  // ST4ML_INGEST_INGESTOR_H_
