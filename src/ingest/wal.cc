#include "ingest/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/fault_injector.h"
#include "storage/atomic_publish.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

// Minimum payload: id + x + y + time + attr_len with an empty attr.
constexpr uint32_t kMinPayloadBytes = 8 + 8 + 8 + 8 + 4;

const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal write failed for " + path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

uint32_t WalCrc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendEventWire(std::string* out, const EventRecord& r) {
  AppendRaw(out, r.id);
  AppendRaw(out, r.x);
  AppendRaw(out, r.y);
  AppendRaw(out, r.time);
  uint32_t len = static_cast<uint32_t>(r.attr.size());
  AppendRaw(out, len);
  out->append(r.attr.data(), r.attr.size());
}

void AppendWalFrame(std::string* out, const EventRecord& r) {
  size_t payload_at = out->size() + kWalFrameOverhead;
  uint32_t payload_len =
      static_cast<uint32_t>(kMinPayloadBytes + r.attr.size());
  AppendRaw(out, payload_len);
  uint32_t crc_placeholder = 0;
  AppendRaw(out, crc_placeholder);
  AppendEventWire(out, r);
  uint32_t crc = WalCrc32(out->data() + payload_at, payload_len);
  std::memcpy(out->data() + payload_at - sizeof(crc), &crc, sizeof(crc));
}

WalWriter::~WalWriter() { Abandon(); }

WalWriter::WalWriter(WalWriter&& other) noexcept {
  *this = std::move(other);
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this == &other) return *this;
  Abandon();
  fd_ = other.fd_;
  sealed_path_ = std::move(other.sealed_path_);
  open_path_ = std::move(other.open_path_);
  record_count_ = other.record_count_;
  byte_count_ = other.byte_count_;
  other.fd_ = -1;
  return *this;
}

void WalWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<WalWriter> WalWriter::Create(const std::string& sealed_path) {
  WalWriter writer;
  writer.sealed_path_ = sealed_path;
  writer.open_path_ = sealed_path + kWalOpenSuffix;
  std::error_code ec;
  fs::path parent = fs::path(sealed_path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  writer.fd_ = ::open(writer.open_path_.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (writer.fd_ < 0) {
    return Status::IOError("cannot create wal segment " + writer.open_path_);
  }
  char header[kWalHeaderBytes];
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  header[sizeof(kWalMagic)] = static_cast<char>(kStpqKindEvent);
  Status wrote =
      WriteAll(writer.fd_, header, sizeof(header), writer.open_path_);
  if (!wrote.ok()) return wrote;
  writer.byte_count_ = kWalHeaderBytes;
  return writer;
}

Status WalWriter::Append(const EventRecord& r) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kWalAppend, open_path_));
  if (fd_ < 0) return Status::Internal("wal segment closed: " + open_path_);
  frame_buf_.clear();
  AppendWalFrame(&frame_buf_, r);
  ST4ML_RETURN_IF_ERROR(
      WriteAll(fd_, frame_buf_.data(), frame_buf_.size(), open_path_));
  record_count_ += 1;
  byte_count_ += frame_buf_.size();
  return Status::Ok();
}

Status WalWriter::AppendFrames(const std::string& frames, uint64_t n) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kWalAppend, open_path_));
  if (fd_ < 0) return Status::Internal("wal segment closed: " + open_path_);
  ST4ML_RETURN_IF_ERROR(
      WriteAll(fd_, frames.data(), frames.size(), open_path_));
  record_count_ += n;
  byte_count_ += frames.size();
  return Status::Ok();
}

Status WalWriter::TruncateTo(uint64_t byte_count, uint64_t record_count) {
  if (fd_ < 0) return Status::Internal("wal segment closed: " + open_path_);
  // ftruncate alone is not enough: the fd's offset sits past the staged
  // frames, and a later append there would leave a hole of zeros replay
  // would read as a torn frame mid-segment.
  if (::ftruncate(fd_, static_cast<off_t>(byte_count)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(byte_count), SEEK_SET) < 0) {
    return Status::IOError("cannot roll back wal segment " + open_path_);
  }
  byte_count_ = byte_count;
  record_count_ = record_count;
  return Status::Ok();
}

Status WalWriter::Seal() {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kWalSeal, sealed_path_));
  if (fd_ < 0) return Status::Internal("wal segment closed: " + open_path_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync failed for " + open_path_);
  }
  ::close(fd_);
  fd_ = -1;
  if (std::rename(open_path_.c_str(), sealed_path_.c_str()) != 0) {
    return Status::IOError("cannot seal wal segment " + sealed_path_);
  }
  return FsyncParentDir(sealed_path_);
}

StatusOr<WalReadResult> ReadWalSegment(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no such wal segment: " + path);
  char header[kWalHeaderBytes];
  in.read(header, sizeof(header));
  bool bad_header =
      in.gcount() != static_cast<std::streamsize>(sizeof(header)) ||
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0 ||
      header[sizeof(kWalMagic)] != static_cast<char>(kStpqKindEvent);
  if (bad_header) {
    if (strict) return Status::Corruption("bad wal header in " + path);
    // A crash between open(2) and the header hitting disk leaves a 0-byte
    // or short-headered `.open` file in which no append was ever acked:
    // report it as one fully-torn empty segment so recovery can remove it
    // instead of failing the whole directory open.
    WalReadResult torn;
    torn.torn_tail = true;
    torn.good_bytes = 0;
    return torn;
  }

  WalReadResult result;
  result.good_bytes = kWalHeaderBytes;
  std::string payload;
  // Tolerant reads may race a live appender, so the only trustworthy size
  // signal is the framing itself: any short read or CRC mismatch is the
  // (possibly still-growing) tail.
  const uint64_t file_bytes = FileSizeBytes(path);
  while (true) {
    uint32_t frame[2];  // payload_len, crc
    in.read(reinterpret_cast<char*>(frame), sizeof(frame));
    if (in.gcount() == 0) break;  // clean end
    bool torn = in.gcount() != static_cast<std::streamsize>(sizeof(frame));
    uint32_t payload_len = torn ? 0 : frame[0];
    if (!torn &&
        (payload_len < kMinPayloadBytes || payload_len > file_bytes)) {
      torn = true;  // implausible length: garbage or a torn length word
    }
    if (!torn) {
      payload.resize(payload_len);
      in.read(payload.data(), payload_len);
      torn = in.gcount() != static_cast<std::streamsize>(payload_len) ||
             WalCrc32(payload.data(), payload_len) != frame[1];
    }
    if (torn) {
      if (strict) {
        return Status::Corruption("torn or corrupt wal frame in " + path);
      }
      result.torn_tail = true;
      break;
    }
    // Decode the STPQ event wire payload; the length must agree exactly.
    EventRecord r;
    const char* p = payload.data();
    std::memcpy(&r.id, p, 8);
    std::memcpy(&r.x, p + 8, 8);
    std::memcpy(&r.y, p + 16, 8);
    std::memcpy(&r.time, p + 24, 8);
    uint32_t attr_len = 0;
    std::memcpy(&attr_len, p + 32, 4);
    if (attr_len != payload_len - kMinPayloadBytes) {
      return Status::Corruption("wal frame length disagrees in " + path);
    }
    r.attr.assign(p + kMinPayloadBytes, attr_len);
    result.records.push_back(std::move(r));
    result.good_bytes += kWalFrameOverhead + payload_len;
  }
  return result;
}

std::vector<std::string> ListWalSegments(const std::string& wal_dir) {
  std::vector<std::string> sealed;
  std::vector<std::string> active;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(wal_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    auto ends_with = [&](const std::string& suffix) {
      return name.size() >= suffix.size() &&
             name.compare(name.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
    };
    if (ends_with(".stwal")) {
      sealed.push_back(entry.path().string());
    } else if (ends_with(std::string(".stwal") + kWalOpenSuffix)) {
      active.push_back(entry.path().string());
    }
  }
  std::sort(sealed.begin(), sealed.end());
  std::sort(active.begin(), active.end());
  sealed.insert(sealed.end(), active.begin(), active.end());
  return sealed;
}

}  // namespace st4ml
