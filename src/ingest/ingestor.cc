#include "ingest/ingestor.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "common/fault_injector.h"
#include "index/stix.h"
#include "storage/atomic_publish.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Parses "s<seq>-b<bucket>.stwal[.open]" back into its sequence number.
bool ParseSegmentSeq(const std::string& name, uint64_t* seq) {
  unsigned long long parsed = 0;
  return std::sscanf(name.c_str(), "s%llu-", &parsed) == 1 &&
         (*seq = parsed, true);
}

std::string PartitionName(uint64_t generation, int64_t bucket) {
  char name[64];
  std::snprintf(name, sizeof(name), "ingest-g%06llu-b%lld.stpq",
                static_cast<unsigned long long>(generation),
                static_cast<long long>(bucket));
  return name;
}

void RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

/// True once the file is confirmed gone (unlinked now or already absent).
bool RemoveFileChecked(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  return !ec || !fs::exists(path);
}

/// The name a segment is recorded under in the manifest's consumed set:
/// always the SEALED name. A parked `.open` straggler drops its suffix so
/// Recover and SelectIngest (which both compare sealed names) find it.
std::string ConsumedName(const std::string& path) {
  std::string name = fs::path(path).filename().string();
  if (EndsWith(name, kWalOpenSuffix)) {
    name.resize(name.size() - std::strlen(kWalOpenSuffix));
  }
  return name;
}

}  // namespace

Ingestor::Ingestor(std::string dir, const IngestorOptions& options,
                   ExecutionContext* ctx)
    : dir_(std::move(dir)), wal_dir_(dir_ + "/wal"), options_(options),
      ctx_(ctx) {}

StatusOr<std::unique_ptr<Ingestor>> Ingestor::Open(const std::string& dir,
                                                   const IngestorOptions& options,
                                                   ExecutionContext* ctx) {
  if (options.bucket_seconds <= 0) {
    return Status::InvalidArgument("bucket_seconds must be positive");
  }
  if (options.seal_records == 0) {
    return Status::InvalidArgument("seal_records must be positive");
  }
  if (options.max_open_buckets == 0) {
    return Status::InvalidArgument("max_open_buckets must be positive");
  }
  std::unique_ptr<Ingestor> ingestor(new Ingestor(dir, options, ctx));
  std::error_code ec;
  fs::create_directories(ingestor->wal_dir_, ec);
  if (ec) return Status::IOError("cannot create ingest directory " + dir);
  ST4ML_RETURN_IF_ERROR(ingestor->Recover());
  if (options.start_compactor) {
    ingestor->compactor_ = std::thread([raw = ingestor.get()] {
      raw->CompactorLoop();
    });
  }
  return ingestor;
}

Ingestor::~Ingestor() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  // Active writers are dropped WITHOUT sealing (WalWriter::Abandon): the
  // on-disk state is exactly a crash's, which Recover() is built to replay.
}

Status Ingestor::Recover() {
  // 1. The manifest is the source of truth for what was committed.
  StatusOr<IngestManifest> read =
      ReadIngestManifest(IngestManifestPath(dir_));
  if (read.ok()) {
    manifest_ = std::move(*read);
  } else if (read.status().code() != Status::Code::kNotFound) {
    return read.status();
  }
  std::set<std::string> consumed(manifest_.consumed.begin(),
                                 manifest_.consumed.end());
  // Consumed names stay live in the manifest after their files are deleted,
  // so their sequence numbers must stay reserved: a reused name would sit
  // in the skip set (acked records invisible to reads) and be deleted as
  // consumed by the next recovery.
  for (const std::string& name : manifest_.consumed) {
    uint64_t seq = 0;
    if (ParseSegmentSeq(name, &seq) && seq >= next_seq_) next_seq_ = seq + 1;
  }
  std::set<std::string> live_parts;
  compacted_records_ = 0;
  for (const StpqPartMeta& p : manifest_.parts) {
    live_parts.insert(p.file);
    compacted_records_ += p.count;
  }

  // 2. Sweep publication debris: stranded `.tmp` stagings everywhere, and
  // orphan `ingest-*` partitions a crash left unlisted (their segments were
  // never marked consumed, so replay below recovers every record).
  std::error_code ec;
  for (const std::string& d : {dir_, wal_dir_}) {
    for (const auto& entry : fs::directory_iterator(d, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (EndsWith(name, ".tmp")) {
        RemoveFile(entry.path().string());
        continue;
      }
      if (d == dir_ && name.rfind("ingest-", 0) == 0) {
        bool orphan_stpq = EndsWith(name, ".stpq") && !live_parts.count(name);
        bool orphan_stix =
            EndsWith(name, ".stix") &&
            !live_parts.count(name.substr(0, name.size() - 5) + ".stpq");
        if (orphan_stpq || orphan_stix) RemoveFile(entry.path().string());
      }
    }
  }

  // 3. Replay the WAL: consumed segments are deleted (their records live in
  // partitions), sealed segments parse strictly, and an `.open` tail is
  // read tolerantly, truncated past its last complete frame, and re-sealed.
  uint64_t replayed = 0;
  for (const std::string& path : ListWalSegments(wal_dir_)) {
    std::string name = fs::path(path).filename().string();
    bool is_open = EndsWith(name, kWalOpenSuffix);
    std::string sealed_name =
        is_open ? name.substr(0, name.size() - std::strlen(kWalOpenSuffix))
                : name;
    // Reserve the sequence number BEFORE any skip: even a consumed or
    // headerless segment's name must never be minted again.
    uint64_t seq = 0;
    if (ParseSegmentSeq(sealed_name, &seq) && seq >= next_seq_) {
      next_seq_ = seq + 1;
    }
    if (consumed.count(sealed_name)) {
      RemoveFile(path);
      continue;
    }
    StatusOr<WalReadResult> result = ReadWalSegment(path, /*strict=*/!is_open);
    if (!result.ok()) return result.status();
    std::string sealed_path = wal_dir_ + "/" + sealed_name;
    if (is_open && result->good_bytes < kWalHeaderBytes) {
      // Torn before the header completed: no append against this segment
      // was ever acked, and truncate-and-re-seal would publish a sealed
      // file the strict parser rejects. Remove the debris instead.
      RemoveFile(path);
      continue;
    }
    if (is_open) {
      if (result->torn_tail &&
          ::truncate(path.c_str(), static_cast<off_t>(result->good_bytes)) !=
              0) {
        return Status::IOError("cannot truncate torn wal tail of " + path);
      }
      ST4ML_RETURN_IF_ERROR(FsyncPath(path));
      if (std::rename(path.c_str(), sealed_path.c_str()) != 0) {
        return Status::IOError("cannot re-seal recovered segment " + path);
      }
      ST4ML_RETURN_IF_ERROR(FsyncParentDir(sealed_path));
    }
    replayed += result->records.size();
    sealed_.push_back(sealed_path);
  }
  staged_records_ = replayed;
  replayed_.store(replayed, std::memory_order_relaxed);
  if (ctx_ != nullptr && replayed > 0) {
    internal::Counters(*ctx_).Add(Counter::kWalReplayedRecords, replayed);
  }
  return Status::Ok();
}

std::string Ingestor::SegmentPath(uint64_t seq, int64_t bucket) const {
  char name[64];
  // Zero-padded sequence FIRST so lexicographic name order is append order.
  std::snprintf(name, sizeof(name), "s%08llu-b%lld.stwal",
                static_cast<unsigned long long>(seq),
                static_cast<long long>(bucket));
  return wal_dir_ + "/" + name;
}

void Ingestor::SealLocked(int64_t bucket) {
  auto it = writers_.find(bucket);
  if (it == writers_.end()) return;
  Status sealed = it->second.Seal();
  if (sealed.ok()) {
    sealed_.push_back(it->second.sealed_path());
    writers_.erase(it);
    return;
  }
  if (!it->second.open()) {
    // fsync succeeded but the rename did not: the bytes are durable under
    // the `.open` name. Park it for the compactor (tolerant read) and let
    // new appends to this bucket start a fresh segment.
    sealed_.push_back(it->second.open_path());
    writers_.erase(it);
  }
  // Otherwise (injected fault / failed fsync before close) the writer stays
  // active: the records are staged and the next threshold or Flush retries.
}

// Keeps the open-writer fd budget: before a NEW bucket writer opens, seal
// the oldest open buckets until under the cap. Under roughly time-ordered
// arrival the oldest bucket is the one least likely to see more appends. A
// seal that fails without closing its fd leaves the writer active for
// retry; skip past it rather than spin.
void Ingestor::ReserveWriterSlotLocked(const std::set<int64_t>* protect) {
  size_t attempts = writers_.size();
  auto it = writers_.begin();
  while (writers_.size() >= options_.max_open_buckets && attempts-- > 0 &&
         it != writers_.end()) {
    int64_t bucket = it->first;
    ++it;  // advance first: SealLocked erases on success
    if (protect != nullptr && protect->count(bucket)) continue;
    SealLocked(bucket);
  }
}

Status Ingestor::Append(const EventRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bucket = FloorDiv(r.time, options_.bucket_seconds);
  auto it = writers_.find(bucket);
  if (it == writers_.end()) {
    ReserveWriterSlotLocked();
    StatusOr<WalWriter> writer =
        WalWriter::Create(SegmentPath(next_seq_, bucket));
    if (!writer.ok()) return writer.status();
    ++next_seq_;
    it = writers_.emplace(bucket, std::move(*writer)).first;
  }
  ST4ML_RETURN_IF_ERROR(it->second.Append(r));
  appended_.fetch_add(1, std::memory_order_relaxed);
  ++staged_records_;
  if (it->second.record_count() >= options_.seal_records) SealLocked(bucket);
  return Status::Ok();
}

Status Ingestor::AppendBatch(const std::vector<EventRecord>& records) {
  if (records.empty()) return Status::Ok();
  // Frame per bucket up front so each touched bucket costs ONE write(2).
  std::map<int64_t, std::pair<std::string, uint64_t>> frames;
  for (const EventRecord& r : records) {
    auto& entry = frames[FloorDiv(r.time, options_.bucket_seconds)];
    AppendWalFrame(&entry.first, r);
    ++entry.second;
  }
  std::set<int64_t> touched;
  for (const auto& [bucket, batch] : frames) touched.insert(bucket);
  std::lock_guard<std::mutex> lock(mu_);
  // All-or-nothing: stage every bucket's frames first, recording each
  // writer's pre-batch watermark, and only ack + seal once all succeeded.
  // A failure on any bucket truncates the earlier buckets back to their
  // watermarks, so an errored batch leaves NOTHING staged and the client
  // can resend the whole batch without duplicating records. The batch's
  // own buckets are protected from the fd-cap seal (and sealing is
  // deferred to after the last write) because a sealed segment's frames
  // could no longer be rolled back.
  struct Watermark {
    WalWriter* writer;
    uint64_t bytes;
    uint64_t records;
  };
  std::vector<Watermark> written;
  written.reserve(frames.size());
  Status staged = Status::Ok();
  for (auto& [bucket, batch] : frames) {
    auto it = writers_.find(bucket);
    if (it == writers_.end()) {
      ReserveWriterSlotLocked(&touched);
      StatusOr<WalWriter> writer =
          WalWriter::Create(SegmentPath(next_seq_, bucket));
      if (!writer.ok()) {
        staged = writer.status();
        break;
      }
      ++next_seq_;
      it = writers_.emplace(bucket, std::move(*writer)).first;
    }
    written.push_back(
        {&it->second, it->second.byte_count(), it->second.record_count()});
    staged = it->second.AppendFrames(batch.first, batch.second);
    if (!staged.ok()) break;
  }
  if (!staged.ok()) {
    // Includes the failing bucket itself: a partial write(2) left bytes
    // past its watermark too. Rollback also rewinds the file offset, so a
    // retried batch appends exactly at the watermark.
    for (const Watermark& w : written) {
      w.writer->TruncateTo(w.bytes, w.records);
    }
    return staged;
  }
  for (const auto& [bucket, batch] : frames) {
    appended_.fetch_add(batch.second, std::memory_order_relaxed);
    staged_records_ += batch.second;
    auto it = writers_.find(bucket);
    if (it != writers_.end() &&
        it->second.record_count() >= options_.seal_records) {
      SealLocked(bucket);
    }
  }
  return Status::Ok();
}

Status Ingestor::Flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int64_t> buckets;
    for (const auto& [bucket, writer] : writers_) buckets.push_back(bucket);
    for (int64_t bucket : buckets) SealLocked(bucket);
    if (!writers_.empty()) {
      return Status::IOError("could not seal every active wal segment");
    }
  }
  return CompactNow();
}

Status Ingestor::CompactNow() {
  std::lock_guard<std::mutex> cycle(compact_mu_);
  // Fires FIRST: an injected fault models a crash at the start of the
  // cycle — every sealed segment stays in place for the next attempt.
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kIngestCompact, dir_));

  std::vector<std::string> segments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    segments = sealed_;
  }
  if (segments.empty()) return Status::Ok();

  // Read every staged record. Sealed segments must parse end to end; a
  // parked `.open` straggler (rename-failed seal) is read tolerantly.
  std::map<int64_t, std::vector<EventRecord>> buckets;
  uint64_t absorbed = 0;
  for (const std::string& path : segments) {
    bool is_open = EndsWith(path, kWalOpenSuffix);
    StatusOr<WalReadResult> result = ReadWalSegment(path, /*strict=*/!is_open);
    if (!result.ok()) return result.status();
    absorbed += result->records.size();
    for (EventRecord& r : result->records) {
      buckets[FloorDiv(r.time, options_.bucket_seconds)].push_back(
          std::move(r));
    }
  }

  // Write the new partitions (atomic: temp + fsync + rename inside the
  // writers). Until the manifest commit below they are invisible orphans a
  // crashed run's Recover() deletes.
  IngestManifest next;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    next.generation = manifest_.generation + 1;
    next.parts = manifest_.parts;
  }
  std::vector<StpqPartMeta> published;
  for (auto& [bucket, records] : buckets) {
    std::string name = PartitionName(next.generation, bucket);
    std::string path = dir_ + "/" + name;
    ST4ML_RETURN_IF_ERROR(WriteStpqFile(path, records));
    ST4ML_RETURN_IF_ERROR(BuildStixForStpq(path, records));
    StpqPartMeta meta;
    meta.file = std::move(name);
    for (const EventRecord& r : records) meta.box.Extend(r.ComputeSTBox());
    meta.count = records.size();
    published.push_back(meta);
    next.parts.push_back(std::move(meta));
  }
  for (const std::string& path : segments) {
    next.consumed.push_back(ConsumedName(path));
  }
  std::vector<std::string> old_pending;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    old_pending = pending_delete_;
    for (const std::string& path : old_pending) {
      next.consumed.push_back(ConsumedName(path));
    }
  }

  // THE commit point: after this rename the partitions are real and the
  // segments are consumed; before it, nothing happened.
  ST4ML_RETURN_IF_ERROR(
      WriteIngestManifest(IngestManifestPath(dir_), next));
  // Advisory mirror for batch tooling that only knows index.meta; readers
  // of the merged view use the manifest, so a crash between these two
  // writes costs nothing.
  ST4ML_RETURN_IF_ERROR(WriteStpqMeta(dir_ + "/index.meta", next.parts));

  {
    // Exclusive: in-process readers hold snapshot_mu() shared across their
    // whole read, so no segment is deleted under one.
    std::unique_lock<std::shared_mutex> snapshot_lock(snapshot_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    manifest_ = std::move(next);
    sealed_.erase(
        std::remove_if(sealed_.begin(), sealed_.end(),
                       [&](const std::string& s) {
                         return std::find(segments.begin(), segments.end(),
                                          s) != segments.end();
                       }),
        sealed_.end());
    staged_records_ -= absorbed;
    for (const StpqPartMeta& p : published) compacted_records_ += p.count;
    // Deferred by one cycle: cross-process readers that listed these
    // segments just before the commit can still open them. A file whose
    // unlink fails stays pending — and therefore stays in the NEXT
    // cycle's consumed list — so it is retried, never replayed as
    // duplicates.
    pending_delete_ = segments;
    for (const std::string& path : old_pending) {
      if (!RemoveFileChecked(path)) pending_delete_.push_back(path);
    }
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (ctx_ != nullptr) {
    internal::Counters(*ctx_).Add(Counter::kCompactionsRun, 1);
  }
  return Status::Ok();
}

void Ingestor::CompactorLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.compact_interval_ms),
                      [&] { return stop_; });
    if (stop_) return;
    lock.unlock();
    // Failures (including injected ingest/compact faults) leave the sealed
    // list intact; the next tick retries.
    CompactNow();
    lock.lock();
  }
}

IngestorStats Ingestor::Stats() const {
  IngestorStats stats;
  stats.appended = appended_.load(std::memory_order_relaxed);
  stats.replayed = replayed_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.staged = staged_records_;
    stats.wal_segments = sealed_.size() + writers_.size();
  }
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    stats.compacted = compacted_records_;
    stats.generation = manifest_.generation;
  }
  return stats;
}

IngestSnapshot Ingestor::Snapshot() const {
  IngestSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    snap.parts = manifest_.parts;
    snap.generation = manifest_.generation;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.wal_paths = sealed_;
    for (const auto& [bucket, writer] : writers_) {
      snap.wal_paths.push_back(writer.open_path());
    }
  }
  return snap;
}

}  // namespace st4ml
