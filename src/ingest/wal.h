#ifndef ST4ML_INGEST_WAL_H_
#define ST4ML_INGEST_WAL_H_

// The write-ahead staging format behind streaming ingestion (DESIGN.md §13,
// ROADMAP #4). Appended records land in time-bucketed `.stwal` segments: a
// tiny header ("STWL1" + record-kind tag) followed by CRC32-framed records
// in the STPQ event wire encoding. An ACTIVE segment carries the extra
// `.open` suffix; sealing fsyncs the bytes and renames away the suffix, so
// the sealed name itself asserts "fully durable, fully framed".
//
// Frame layout (native-endian, like STPQ):
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = id i64, x f64, y f64, time i64, attr_len u32, attr bytes
//
// Durability contract:
//  - Append ACKS once write(2) has accepted the frame: the record survives
//    a process crash (the kernel owns the bytes) but only a SEAL's fsync
//    makes it power-loss durable.
//  - A crash mid-append can only tear the LAST frame of an `.open`
//    segment; the CRC framing finds the torn tail and replay stops exactly
//    at the last complete frame — every acked-and-completed record before
//    it is recovered, the unacked torn frame is dropped.
//  - Sealed segments must parse end to end; a bad frame there is
//    Corruption, never silently skipped.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/records.h"

namespace st4ml {

inline constexpr char kWalMagic[5] = {'S', 'T', 'W', 'L', '1'};
/// Magic + the STPQ record-kind tag (events, for now).
inline constexpr uint64_t kWalHeaderBytes = sizeof(kWalMagic) + 1;
/// Bytes of framing per record on top of the payload: length + CRC32.
inline constexpr uint64_t kWalFrameOverhead = 4 + 4;
/// Suffix an ACTIVE (still appendable) segment carries.
inline constexpr const char* kWalOpenSuffix = ".open";

/// CRC32 (reflected, polynomial 0xEDB88320 — the zlib polynomial) over
/// `len` bytes. Table-based, no dependencies.
uint32_t WalCrc32(const void* data, size_t len);

/// Serializes one record in the STPQ event wire encoding (the WAL frame
/// payload — byte-identical to the record's bytes inside a `.stpq`).
void AppendEventWire(std::string* out, const EventRecord& r);

/// Appends one complete frame (length, CRC, payload) for `r` to `out`.
void AppendWalFrame(std::string* out, const EventRecord& r);

/// Single-writer appender for one segment. Created against the SEALED path;
/// bytes accumulate under `<path>.open` and Seal publishes the sealed name.
class WalWriter {
 public:
  static StatusOr<WalWriter> Create(const std::string& sealed_path);

  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames and writes one record. Returning Ok IS the ack: the frame has
  /// been accepted by the kernel. Fires the wal/append fault site first —
  /// an injected failure means the record was never written, never acked.
  Status Append(const EventRecord& r);

  /// Writes pre-built frames (AppendWalFrame output) in ONE write call —
  /// the batched append path. `n` is how many records `frames` holds.
  Status AppendFrames(const std::string& frames, uint64_t n);

  /// Rolls the segment back to an earlier watermark: ftruncate to
  /// `byte_count`, rewind the file offset there, and reset the counters.
  /// The batched append path uses this to un-stage a batch's frames when a
  /// later bucket of the same batch fails, keeping AppendBatch
  /// all-or-nothing.
  Status TruncateTo(uint64_t byte_count, uint64_t record_count);

  /// fsync + rename to the sealed name + fsync the directory. Fires the
  /// wal/seal fault site first; on any failure the segment simply stays
  /// `.open` (still replayable, still appendable). After Ok the writer is
  /// closed and unusable.
  Status Seal();

  /// Closes the descriptor WITHOUT fsync or rename — exactly what a crash
  /// leaves behind. The destructor does the same, so dropping an Ingestor
  /// without Flush IS the crash simulation the recovery tests lean on.
  void Abandon();

  bool open() const { return fd_ >= 0; }
  uint64_t record_count() const { return record_count_; }
  uint64_t byte_count() const { return byte_count_; }
  const std::string& sealed_path() const { return sealed_path_; }
  const std::string& open_path() const { return open_path_; }

 private:
  int fd_ = -1;
  std::string sealed_path_;
  std::string open_path_;
  uint64_t record_count_ = 0;
  uint64_t byte_count_ = 0;
  std::string frame_buf_;  // reused per Append to avoid an alloc per record
};

/// One segment's replayed content.
struct WalReadResult {
  std::vector<EventRecord> records;
  /// True when the read stopped early at an incomplete or CRC-failing
  /// trailing frame (only legal for tolerant reads of an active tail).
  bool torn_tail = false;
  /// Byte offset just past the last COMPLETE frame — the truncation point
  /// recovery uses to drop a torn tail before re-sealing.
  uint64_t good_bytes = 0;
};

/// Reads every complete frame of `path`. `strict` (sealed segments) turns
/// any torn or CRC-failing frame into Corruption; tolerant mode (active
/// `.open` tails, and reads racing a live appender) stops at the first bad
/// frame and reports it via `torn_tail`. A short or invalid HEADER — what a
/// crash between creating the file and flushing its header leaves — is
/// Corruption when strict, but in tolerant mode it is one fully-torn empty
/// segment (`torn_tail=true`, `good_bytes=0`) so recovery can clean it up
/// instead of refusing to open the directory.
StatusOr<WalReadResult> ReadWalSegment(const std::string& path, bool strict);

/// Paths of every WAL segment directly inside `wal_dir` — sealed `.stwal`
/// first, then active `.stwal.open`, each group sorted by name (names embed
/// a zero-padded sequence number, so name order IS append order).
std::vector<std::string> ListWalSegments(const std::string& wal_dir);

}  // namespace st4ml

#endif  // ST4ML_INGEST_WAL_H_
