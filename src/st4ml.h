#ifndef ST4ML_ST4ML_H_
#define ST4ML_ST4ML_H_

/// The ST4ML public API, one include. Applications (see examples/) should
/// include only this header; the per-layer headers below are the same API
/// split along the paper's architecture for targeted includes inside the
/// library, benches and tests.

// Substrates: error contract, logging, deterministic RNG, env knobs,
// bounded retry, and scripted/probabilistic fault injection for tests.
#include "common/env.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

// Vectorized columnar kernels behind the runtime CPU backend registry.
#include "accel/hash_mix.h"
#include "accel/kernels.h"

// Geometry and time.
#include "geometry/geometry.h"
#include "geometry/linestring.h"
#include "geometry/mbr.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "temporal/duration.h"

// Spatio-temporal indexing, including the persistent mmap'd `.stix`
// sidecar index selection cold-starts from.
#include "index/rtree.h"
#include "index/stbox.h"
#include "index/stix.h"
#include "index/zcurve.h"

// Observability: typed engine counters, nested-span tracing, exporters.
#include "observability/counters.h"
#include "observability/trace_export.h"
#include "observability/tracer.h"

// The mini dataflow engine ST4ML rides on.
#include "engine/broadcast.h"
#include "engine/cached_dataset.h"
#include "engine/dataset.h"
#include "engine/dataset_cache.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"

// The pipeline facade: one object per Selection → Conversion → Extraction
// run, auto-attaching stage spans and per-stage record counters — plus the
// Session/Job layer every entry point (CLIs, the st4mld daemon) drives.
#include "pipeline/pipeline.h"
#include "pipeline/session.h"

// Storage: records, the STPQ on-disk format, text import/export.
#include "storage/atomic_publish.h"
#include "storage/csv.h"
#include "storage/ingest_manifest.h"
#include "storage/json.h"
#include "storage/records.h"
#include "storage/stpq.h"
#include "storage/text_import.h"

// Streaming ingestion: crash-safe WAL staging + background compaction
// (DESIGN.md §13); SelectIngest serves the merged staged+compacted view.
#include "ingest/ingestor.h"
#include "ingest/wal.h"

// ST instances (Table 1) and the collective structures they convert into.
#include "instances/instances.h"
#include "instances/structures.h"

// Stage 1 of the paper pipeline: partitioning + on-disk-index selection.
#include "partition/balance.h"
#include "partition/baseline_partitioners.h"
#include "partition/hash_partitioner.h"
#include "partition/partitioner.h"
#include "partition/quadtree_partitioner.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "partition/tbalance_partitioner.h"
#include "selection/on_disk_index.h"
#include "selection/query_planner.h"
#include "selection/select_query.h"
#include "selection/selector.h"

// Stage 2: conversion between instances.
#include "conversion/parse.h"
#include "conversion/shuffle_conversion.h"
#include "conversion/singular_to_collective.h"
#include "mapmatching/hmm_map_matcher.h"
#include "mapmatching/road_network.h"

// Stage 3: feature extraction.
#include "extraction/collective_extractors.h"
#include "extraction/event_extractors.h"
#include "extraction/extractor.h"
#include "extraction/rdd_api.h"
#include "extraction/traj_extractors.h"

// Synthetic dataset generators and the baseline-system miniatures.
#include "baselines/geo_object.h"
#include "baselines/geomesa_like.h"
#include "baselines/geospark_like.h"
#include "datagen/generators.h"

#endif  // ST4ML_ST4ML_H_
