#include "geometry/geometry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace st4ml {

namespace {

double Cross(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool OnSegment(const Point& p, const Point& q, const Point& r) {
  return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
         std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}

int Orientation(const Point& p, const Point& q, const Point& r) {
  double v = Cross(p, q, r);
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

bool SegmentIntersectsMbr(const Point& a, const Point& b, const Mbr& mbr) {
  if (mbr.ContainsPoint(a) || mbr.ContainsPoint(b)) return true;
  // Segment bounding-box reject.
  if (std::max(a.x, b.x) < mbr.x_min || std::min(a.x, b.x) > mbr.x_max ||
      std::max(a.y, b.y) < mbr.y_min || std::min(a.y, b.y) > mbr.y_max) {
    return false;
  }
  Point c1(mbr.x_min, mbr.y_min), c2(mbr.x_max, mbr.y_min);
  Point c3(mbr.x_max, mbr.y_max), c4(mbr.x_min, mbr.y_max);
  return SegmentsIntersect(a, b, c1, c2) || SegmentsIntersect(a, b, c2, c3) ||
         SegmentsIntersect(a, b, c3, c4) || SegmentsIntersect(a, b, c4, c1);
}

}  // namespace

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  int o1 = Orientation(a1, a2, b1);
  int o2 = Orientation(a1, a2, b2);
  int o3 = Orientation(b1, b2, a1);
  int o4 = Orientation(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a1, b1, a2)) return true;
  if (o2 == 0 && OnSegment(a1, b2, a2)) return true;
  if (o3 == 0 && OnSegment(b1, a1, b2)) return true;
  if (o4 == 0 && OnSegment(b1, a2, b2)) return true;
  return false;
}

double PointToSegmentDistanceSq(const Point& p, const Point& a, const Point& b,
                                Point* closest) {
  double abx = b.x - a.x;
  double aby = b.y - a.y;
  double len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (len_sq > 0) {
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    t = std::max(0.0, std::min(1.0, t));
  }
  Point proj(a.x + t * abx, a.y + t * aby);
  if (closest != nullptr) *closest = proj;
  double dx = p.x - proj.x;
  double dy = p.y - proj.y;
  return dx * dx + dy * dy;
}

bool LineString::IntersectsMbr(const Mbr& mbr) const {
  if (points_.empty()) return false;
  if (points_.size() == 1) return mbr.ContainsPoint(points_[0]);
  if (!ComputeMbr().Intersects(mbr)) return false;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (SegmentIntersectsMbr(points_[i - 1], points_[i], mbr)) return true;
  }
  return false;
}

bool Polygon::ContainsPoint(const Point& p) const {
  if (ring_.size() < 3 || !mbr_.ContainsPoint(p)) return false;
  bool inside = false;
  size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring_[i];
    const Point& b = ring_[j];
    // Boundary counts as inside (consistent with Mbr::ContainsPoint).
    if (Orientation(a, b, p) == 0 && OnSegment(a, p, b)) return true;
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::IntersectsLineString(const LineString& line) const {
  const auto& pts = line.points();
  if (pts.empty() || ring_.size() < 3) return false;
  if (!mbr_.Intersects(line.ComputeMbr())) return false;
  for (const Point& p : pts) {
    if (ContainsPoint(p)) return true;
  }
  size_t n = ring_.size();
  for (size_t i = 1; i < pts.size(); ++i) {
    for (size_t j = 0, k = n - 1; j < n; k = j++) {
      if (SegmentsIntersect(pts[i - 1], pts[i], ring_[j], ring_[k])) {
        return true;
      }
    }
  }
  return false;
}

bool Polygon::IntersectsMbr(const Mbr& mbr) const {
  if (ring_.size() < 3 || !mbr_.Intersects(mbr)) return false;
  for (const Point& p : ring_) {
    if (mbr.ContainsPoint(p)) return true;
  }
  // A rectangle corner inside the polygon, or crossing edges.
  Point c1(mbr.x_min, mbr.y_min), c2(mbr.x_max, mbr.y_min);
  Point c3(mbr.x_max, mbr.y_max), c4(mbr.x_min, mbr.y_max);
  if (ContainsPoint(c1) || ContainsPoint(c2) || ContainsPoint(c3) ||
      ContainsPoint(c4)) {
    return true;
  }
  size_t n = ring_.size();
  const Point corners[5] = {c1, c2, c3, c4, c1};
  for (size_t j = 0, k = n - 1; j < n; k = j++) {
    for (int e = 0; e < 4; ++e) {
      if (SegmentsIntersect(ring_[j], ring_[k], corners[e], corners[e + 1])) {
        return true;
      }
    }
  }
  return false;
}

Mbr Geometry::ComputeMbr() const {
  if (IsPoint()) return Mbr(AsPoint());
  if (IsLineString()) return AsLineString().ComputeMbr();
  return AsPolygon().mbr();
}

bool Geometry::IntersectsMbr(const Mbr& mbr) const {
  if (IsPoint()) return mbr.ContainsPoint(AsPoint());
  if (IsLineString()) return AsLineString().IntersectsMbr(mbr);
  return AsPolygon().IntersectsMbr(mbr);
}

bool Geometry::IntersectsPolygon(const Polygon& polygon) const {
  if (IsPoint()) return polygon.ContainsPoint(AsPoint());
  if (IsLineString()) return polygon.IntersectsLineString(AsLineString());
  // Polygon-polygon: ring of one treated as a linestring against the other,
  // plus mutual containment of a vertex.
  const Polygon& other = AsPolygon();
  if (other.ring().empty() || polygon.ring().empty()) return false;
  LineString ring(other.ring());
  if (polygon.IntersectsLineString(ring)) return true;
  return other.ContainsPoint(polygon.ring()[0]);
}

namespace {

void AppendCoords(std::string* out, const std::vector<Point>& pts,
                  bool close_ring) {
  char buf[64];
  out->push_back('(');
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) out->append(", ");
    std::snprintf(buf, sizeof(buf), "%.9g %.9g", pts[i].x, pts[i].y);
    out->append(buf);
  }
  if (close_ring && !pts.empty()) {
    out->append(", ");
    std::snprintf(buf, sizeof(buf), "%.9g %.9g", pts[0].x, pts[0].y);
    out->append(buf);
  }
  out->push_back(')');
}

/// Parses "x y, x y, ..." until ')'.
Status ParseCoords(const std::string& wkt, size_t* pos,
                   std::vector<Point>* out) {
  while (*pos < wkt.size() && wkt[*pos] != ')') {
    char* end = nullptr;
    double x = std::strtod(wkt.c_str() + *pos, &end);
    if (end == wkt.c_str() + *pos) {
      return Status::Corruption("bad WKT coordinate: " + wkt);
    }
    *pos = end - wkt.c_str();
    double y = std::strtod(wkt.c_str() + *pos, &end);
    if (end == wkt.c_str() + *pos) {
      return Status::Corruption("bad WKT coordinate: " + wkt);
    }
    *pos = end - wkt.c_str();
    out->push_back(Point(x, y));
    while (*pos < wkt.size() && (wkt[*pos] == ',' || wkt[*pos] == ' ')) ++*pos;
  }
  if (*pos >= wkt.size()) return Status::Corruption("unterminated WKT: " + wkt);
  ++*pos;  // consume ')'
  return Status::Ok();
}

}  // namespace

std::string ToWkt(const Geometry& geometry) {
  std::string out;
  if (geometry.IsPoint()) {
    out = "POINT ";
    AppendCoords(&out, {geometry.AsPoint()}, false);
  } else if (geometry.IsLineString()) {
    out = "LINESTRING ";
    AppendCoords(&out, geometry.AsLineString().points(), false);
  } else {
    out = "POLYGON (";
    AppendCoords(&out, geometry.AsPolygon().ring(), true);
    out.push_back(')');
  }
  return out;
}

Status FromWkt(const std::string& wkt, Geometry* geometry) {
  size_t open = wkt.find('(');
  if (open == std::string::npos) {
    return Status::Corruption("no coordinates in WKT: " + wkt);
  }
  std::string tag = wkt.substr(0, open);
  size_t pos = open + 1;
  std::vector<Point> pts;
  if (tag.find("POINT") != std::string::npos) {
    ST4ML_RETURN_IF_ERROR(ParseCoords(wkt, &pos, &pts));
    if (pts.size() != 1) return Status::Corruption("POINT arity: " + wkt);
    *geometry = Geometry(pts[0]);
  } else if (tag.find("LINESTRING") != std::string::npos) {
    ST4ML_RETURN_IF_ERROR(ParseCoords(wkt, &pos, &pts));
    *geometry = Geometry(LineString(std::move(pts)));
  } else if (tag.find("POLYGON") != std::string::npos) {
    while (pos < wkt.size() && (wkt[pos] == ' ' || wkt[pos] == '(')) ++pos;
    pos = wkt.find('(', open + 1);
    if (pos == std::string::npos) {
      return Status::Corruption("POLYGON ring missing: " + wkt);
    }
    ++pos;
    ST4ML_RETURN_IF_ERROR(ParseCoords(wkt, &pos, &pts));
    if (pts.size() >= 2 && pts.front() == pts.back()) pts.pop_back();
    *geometry = Geometry(Polygon(std::move(pts)));
  } else {
    return Status::InvalidArgument("unknown WKT tag: " + tag);
  }
  return Status::Ok();
}

}  // namespace st4ml
