#ifndef ST4ML_GEOMETRY_POINT_H_
#define ST4ML_GEOMETRY_POINT_H_

#include <algorithm>
#include <cmath>

namespace st4ml {

/// A 2-d point; by convention x = longitude, y = latitude for geographic data.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// Planar Euclidean distance in coordinate units.
inline double EuclideanDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Great-circle distance in meters between two (lon, lat) points.
inline double HaversineMeters(const Point& a, const Point& b) {
  constexpr double kEarthRadiusM = 6371000.0;
  constexpr double kDegToRad = 0.017453292519943295;
  double lat1 = a.y * kDegToRad;
  double lat2 = b.y * kDegToRad;
  double dlat = (b.y - a.y) * kDegToRad;
  double dlon = (b.x - a.x) * kDegToRad;
  double sin_dlat = std::sin(dlat / 2);
  double sin_dlon = std::sin(dlon / 2);
  double h = sin_dlat * sin_dlat +
             std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

/// True when segments [a1,a2] and [b1,b2] intersect (touching counts).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

}  // namespace st4ml

#endif  // ST4ML_GEOMETRY_POINT_H_
