#ifndef ST4ML_GEOMETRY_GEOMETRY_H_
#define ST4ML_GEOMETRY_GEOMETRY_H_

#include <string>
#include <variant>

#include "common/status.h"
#include "geometry/linestring.h"
#include "geometry/mbr.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace st4ml {

/// A tagged union of the shapes the baselines' String-typed records carry
/// (JTS-geometry stand-in). ST4ML's own typed instances do not need this —
/// which is exactly the paper's Table 1 point.
class Geometry {
 public:
  Geometry() : shape_(Point()) {}
  explicit Geometry(Point p) : shape_(p) {}
  explicit Geometry(LineString line) : shape_(std::move(line)) {}
  explicit Geometry(Polygon polygon) : shape_(std::move(polygon)) {}

  bool IsPoint() const { return std::holds_alternative<Point>(shape_); }
  bool IsLineString() const {
    return std::holds_alternative<LineString>(shape_);
  }
  bool IsPolygon() const { return std::holds_alternative<Polygon>(shape_); }

  const Point& AsPoint() const { return std::get<Point>(shape_); }
  const LineString& AsLineString() const {
    return std::get<LineString>(shape_);
  }
  const Polygon& AsPolygon() const { return std::get<Polygon>(shape_); }

  Mbr ComputeMbr() const;

  /// Exact shape-vs-rectangle intersection (shared refinement predicate).
  bool IntersectsMbr(const Mbr& mbr) const;

  /// Exact shape-vs-polygon intersection.
  bool IntersectsPolygon(const Polygon& polygon) const;

 private:
  std::variant<Point, LineString, Polygon> shape_;
};

/// WKT round trip for the string-typed baselines (POINT / LINESTRING /
/// POLYGON with a single ring).
std::string ToWkt(const Geometry& geometry);
Status FromWkt(const std::string& wkt, Geometry* geometry);

}  // namespace st4ml

#endif  // ST4ML_GEOMETRY_GEOMETRY_H_
