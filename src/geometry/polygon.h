#ifndef ST4ML_GEOMETRY_POLYGON_H_
#define ST4ML_GEOMETRY_POLYGON_H_

#include <utility>
#include <vector>

#include "geometry/linestring.h"
#include "geometry/mbr.h"
#include "geometry/point.h"

namespace st4ml {

/// A simple polygon given by its outer ring (not closed; the edge from the
/// last vertex back to the first is implicit). Containment is ray casting
/// with an MBR fast path.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring)
      : ring_(std::move(ring)), mbr_(ComputeRingMbr(ring_)) {}

  static Polygon FromMbr(const Mbr& mbr) {
    return Polygon({Point(mbr.x_min, mbr.y_min), Point(mbr.x_max, mbr.y_min),
                    Point(mbr.x_max, mbr.y_max), Point(mbr.x_min, mbr.y_max)});
  }

  const std::vector<Point>& ring() const { return ring_; }
  const Mbr& mbr() const { return mbr_; }
  size_t size() const { return ring_.size(); }

  bool ContainsPoint(const Point& p) const;

  /// Exact polygon-polyline intersection: a vertex of the line inside, or an
  /// edge crossing.
  bool IntersectsLineString(const LineString& line) const;

  /// Exact polygon-rectangle intersection.
  bool IntersectsMbr(const Mbr& mbr) const;

 private:
  static Mbr ComputeRingMbr(const std::vector<Point>& ring) {
    Mbr mbr;
    for (const Point& p : ring) mbr.Extend(p);
    return mbr;
  }

  std::vector<Point> ring_;
  Mbr mbr_;
};

}  // namespace st4ml

#endif  // ST4ML_GEOMETRY_POLYGON_H_
