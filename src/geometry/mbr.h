#ifndef ST4ML_GEOMETRY_MBR_H_
#define ST4ML_GEOMETRY_MBR_H_

#include <algorithm>

#include "geometry/point.h"

namespace st4ml {

/// 2-d minimum bounding rectangle with inclusive boundaries. A
/// default-constructed Mbr is empty (inverted bounds) and extends from
/// nothing.
struct Mbr {
  double x_min = 1.0;
  double y_min = 1.0;
  double x_max = 0.0;
  double y_max = 0.0;

  Mbr() = default;
  Mbr(double x_min_in, double y_min_in, double x_max_in, double y_max_in)
      : x_min(x_min_in), y_min(y_min_in), x_max(x_max_in), y_max(y_max_in) {}
  explicit Mbr(const Point& p) : Mbr(p.x, p.y, p.x, p.y) {}

  bool IsEmpty() const { return x_min > x_max || y_min > y_max; }
  double Width() const { return IsEmpty() ? 0.0 : x_max - x_min; }
  double Height() const { return IsEmpty() ? 0.0 : y_max - y_min; }
  double Area() const { return Width() * Height(); }
  Point Center() const {
    return Point((x_min + x_max) / 2, (y_min + y_max) / 2);
  }

  bool ContainsPoint(const Point& p) const {
    return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
  }

  bool Contains(const Mbr& other) const {
    return !IsEmpty() && !other.IsEmpty() && other.x_min >= x_min &&
           other.x_max <= x_max && other.y_min >= y_min && other.y_max <= y_max;
  }

  bool Intersects(const Mbr& other) const {
    return !IsEmpty() && !other.IsEmpty() && x_min <= other.x_max &&
           other.x_min <= x_max && y_min <= other.y_max && other.y_min <= y_max;
  }

  /// Grows (or shrinks, when empty: adopts) to cover `p` / `other`.
  void Extend(const Point& p) {
    if (IsEmpty()) {
      *this = Mbr(p);
      return;
    }
    x_min = std::min(x_min, p.x);
    y_min = std::min(y_min, p.y);
    x_max = std::max(x_max, p.x);
    y_max = std::max(y_max, p.y);
  }

  void Extend(const Mbr& other) {
    if (other.IsEmpty()) return;
    if (IsEmpty()) {
      *this = other;
      return;
    }
    x_min = std::min(x_min, other.x_min);
    y_min = std::min(y_min, other.y_min);
    x_max = std::max(x_max, other.x_max);
    y_max = std::max(y_max, other.y_max);
  }

  /// A copy grown by `margin` on every side.
  Mbr Buffered(double margin) const {
    return Mbr(x_min - margin, y_min - margin, x_max + margin, y_max + margin);
  }

  bool operator==(const Mbr& other) const {
    return x_min == other.x_min && y_min == other.y_min &&
           x_max == other.x_max && y_max == other.y_max;
  }
};

}  // namespace st4ml

#endif  // ST4ML_GEOMETRY_MBR_H_
