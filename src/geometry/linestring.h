#ifndef ST4ML_GEOMETRY_LINESTRING_H_
#define ST4ML_GEOMETRY_LINESTRING_H_

#include <utility>
#include <vector>

#include "geometry/mbr.h"
#include "geometry/point.h"

namespace st4ml {

/// An ordered polyline (a trajectory's spatial shape).
class LineString {
 public:
  LineString() = default;
  explicit LineString(std::vector<Point> points) : points_(std::move(points)) {}

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point>* mutable_points() { return &points_; }
  size_t size() const { return points_.size(); }

  Mbr ComputeMbr() const {
    Mbr mbr;
    for (const Point& p : points_) mbr.Extend(p);
    return mbr;
  }

  /// Total planar length in coordinate units.
  double Length() const {
    double total = 0.0;
    for (size_t i = 1; i < points_.size(); ++i) {
      total += EuclideanDistance(points_[i - 1], points_[i]);
    }
    return total;
  }

  /// Total great-circle length in meters (points are lon/lat).
  double LengthMeters() const {
    double total = 0.0;
    for (size_t i = 1; i < points_.size(); ++i) {
      total += HaversineMeters(points_[i - 1], points_[i]);
    }
    return total;
  }

  /// Exact intersection with a rectangle: some vertex inside, or some segment
  /// crossing an edge. This is the shared refinement predicate every system in
  /// the repo uses for trajectory-to-cell assignment, so results agree.
  bool IntersectsMbr(const Mbr& mbr) const;

 private:
  std::vector<Point> points_;
};

/// Squared distance from `p` to segment [a, b], and the closest point.
double PointToSegmentDistanceSq(const Point& p, const Point& a, const Point& b,
                                Point* closest);

}  // namespace st4ml

#endif  // ST4ML_GEOMETRY_LINESTRING_H_
